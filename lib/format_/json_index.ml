open Proteus_model

type kind = Kobj | Karr | Kstr | Kint | Kfloat | Kbool | Knull

type entry = { start : int; stop : int; kind : kind }

(* Per-object storage is packed into raw bytes so the index footprint stays
   a small fraction of the input (the paper reports ~15-25%):

   - entry i (1-based; 0 is the synthesized whole-object root):
     5 bytes at [5*(i-1)]: rel_start:u16, len:u16, kind:u8 — positions are
     relative to the object base, so u16 suffices for objects <64 KiB;
   - flexible-schema Level 0 follows the entries: 3 bytes per field,
     path_id:u16 (interned globally) + slot:u8, sorted by path_id.

   Objects too large for the packed widths fall back to a boxed "wide"
   representation. *)
type packed_obj = {
  base : int;
  size : int;
  pdata : Bytes.t;
  nentries : int;   (* excluding the root *)
  nlevel0 : int;    (* 0 in fixed-schema mode *)
}

type obj_repr =
  | Packed of packed_obj
  | Wide of {
      w_base : int;
      w_size : int;
      w_entries : entry array;           (* excluding the root *)
      w_level0 : (int * int) array;      (* (path_id, slot), sorted by id *)
    }

type t = {
  src : string;
  objects : obj_repr array;
  shared : (string * int) array option;  (* fixed-schema shared Level 0, sorted *)
  all_paths : string list;
  path_ids : (string, int) Hashtbl.t;    (* interned path names *)
  path_names : string array;
}

let source t = t.src
let object_count t = Array.length t.objects
let is_fixed_schema t = t.shared <> None

let fail pos fmt = Perror.parse_error ~what:"json-index" ~pos fmt

let kind_code = function
  | Kobj -> 0
  | Karr -> 1
  | Kstr -> 2
  | Kint -> 3
  | Kfloat -> 4
  | Kbool -> 5
  | Knull -> 6

let kind_of_code = function
  | 0 -> Kobj
  | 1 -> Karr
  | 2 -> Kstr
  | 3 -> Kint
  | 4 -> Kfloat
  | 5 -> Kbool
  | _ -> Knull

(* --- raw scanning ------------------------------------------------------- *)

let skip_string src pos =
  (* pos at opening quote; returns position after closing quote *)
  let n = String.length src in
  let rec go i =
    if i >= n then fail i "unterminated string"
    else
      match src.[i] with
      | '\\' -> go (i + 2)
      | '"' -> i + 1
      | _ -> go (i + 1)
  in
  go (pos + 1)

let num_kind src start stop =
  let rec go i =
    if i >= stop then Kint
    else match src.[i] with '.' | 'e' | 'E' -> Kfloat | _ -> go (i + 1)
  in
  go start

(* Containers are skipped by a flat depth-counting automaton: this loop is
   the floor of every unnest over raw JSON, so it avoids per-value calls.
   [pos] at the opening bracket; returns the position after the matching
   closing one. Inputs reaching this point were validated at build time. *)
let skip_container src pos =
  let n = String.length src in
  let i = ref pos and depth = ref 0 and fin = ref (-1) in
  while !fin < 0 do
    if !i >= n then fail !i "unterminated container";
    (match String.unsafe_get src !i with
    | '{' | '[' -> incr depth
    | '}' | ']' ->
      decr depth;
      if !depth = 0 then fin := !i + 1
    | '"' -> i := skip_string src !i - 1
    | _ -> ());
    incr i
  done;
  !fin

let skip_value src pos =
  let pos = Json.skip_ws src pos in
  let n = String.length src in
  if pos >= n then fail pos "unexpected end of input";
  match src.[pos] with
  | '"' -> skip_string src pos
  | '{' | '[' -> skip_container src pos
  | 'n' | 't' -> pos + 4
  | 'f' -> pos + 5
  | '-' | '0' .. '9' ->
    let rec go i =
      if i < n && (match src.[i] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      then go (i + 1)
      else i
    in
    go pos
  | c -> fail pos "unexpected character %C" c

(* --- indexing one object ------------------------------------------------ *)

(* Walk the object at [pos], registering entries for every field path
   reachable through nested objects. Returns (entries_rev, level0_rev,
   next_entry_id, end_pos). *)
let index_object src pos =
  let entries = ref [] and level0 = ref [] and next_id = ref 0 in
  let add_entry e =
    entries := e :: !entries;
    incr next_id;
    !next_id - 1
  in
  let rec walk_obj prefix pos =
    (* pos at '{'; registers the fields; returns end position. *)
    let n = String.length src in
    let rec members i =
      let i = Json.skip_ws src i in
      if i >= n then fail i "unterminated object"
      else if src.[i] = '}' then i + 1
      else begin
        let name, after_name = Json.parse_string_lit src i in
        let i = Json.skip_ws src after_name in
        if i >= n || src.[i] <> ':' then fail i "expected ':'";
        let vstart = Json.skip_ws src (i + 1) in
        let path = if prefix = "" then name else prefix ^ "." ^ name in
        let vend =
          match src.[vstart] with
          | '{' ->
            let vend = skip_container src vstart in
            let id = add_entry { start = vstart; stop = vend; kind = Kobj } in
            level0 := (path, id) :: !level0;
            (* Recurse to register nested paths ("register nested records in
               Level 0", Fig. 4: pointer to c.d.d1). *)
            let _end2 = walk_obj path vstart in
            vend
          | '[' ->
            let vend = skip_container src vstart in
            let id = add_entry { start = vstart; stop = vend; kind = Karr } in
            level0 := (path, id) :: !level0;
            vend
          | '"' ->
            let vend = skip_string src vstart in
            let id = add_entry { start = vstart; stop = vend; kind = Kstr } in
            level0 := (path, id) :: !level0;
            vend
          | 't' | 'f' ->
            let vend = skip_value src vstart in
            let id = add_entry { start = vstart; stop = vend; kind = Kbool } in
            level0 := (path, id) :: !level0;
            vend
          | 'n' ->
            let vend = skip_value src vstart in
            let id = add_entry { start = vstart; stop = vend; kind = Knull } in
            level0 := (path, id) :: !level0;
            vend
          | _ ->
            let vend = skip_value src vstart in
            let id = add_entry { start = vstart; stop = vend; kind = num_kind src vstart vend } in
            level0 := (path, id) :: !level0;
            vend
        in
        let i = Json.skip_ws src vend in
        if i < n && src.[i] = ',' then members (i + 1)
        else if i < n && src.[i] = '}' then i + 1
        else fail i "expected ',' or '}'"
      end
    in
    members (pos + 1)
  in
  if src.[pos] <> '{' then fail pos "dataset element is not an object";
  let stop = walk_obj "" pos in
  (* slots are 1-based above the synthesized root entry *)
  let level0 =
    List.rev_map (fun (p, id) -> (p, id + 1)) !level0
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> Array.of_list
  in
  (List.rev !entries, level0, stop)

let pack_object ~path_id ~keep_level0 ~base ~stop entries level0 : obj_repr =
  (* [entries]/[level0] exclude/are relative to the root (slot 0) *)
  let size = stop - base in
  let n = List.length entries in
  let l0 = if keep_level0 then level0 else [] in
  let fits =
    size < 0x10000
    && n < 255
    && List.for_all (fun (e : entry) -> e.stop - e.start < 0x10000) entries
  in
  if fits then begin
    let nlevel0 = List.length l0 in
    let pdata = Bytes.create ((5 * n) + (3 * nlevel0)) in
    List.iteri
      (fun i (e : entry) ->
        let off = 5 * i in
        Bytes.set_uint16_le pdata off (e.start - base);
        Bytes.set_uint16_le pdata (off + 2) (e.stop - e.start);
        Bytes.set_uint8 pdata (off + 4) (kind_code e.kind))
      entries;
    let sorted =
      List.map (fun (p, slot) -> (path_id p, slot)) l0
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    List.iteri
      (fun i (id, slot) ->
        let off = (5 * n) + (3 * i) in
        Bytes.set_uint16_le pdata off id;
        Bytes.set_uint8 pdata (off + 2) slot)
      sorted;
    Packed { base; size; pdata; nentries = n; nlevel0 }
  end
  else
    Wide
      {
        w_base = base;
        w_size = size;
        w_entries = Array.of_list entries;
        w_level0 =
          List.map (fun (p, slot) -> (path_id p, slot)) l0
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> Array.of_list;
      }

let build src =
  let n = String.length src in
  let objects = ref [] in
  let rec go pos =
    let pos = Json.skip_ws src pos in
    if pos < n then begin
      let entries, level0, stop = index_object src pos in
      objects := (pos, stop, entries, level0) :: !objects;
      go stop
    end
  in
  go 0;
  let objs = Array.of_list (List.rev !objects) in
  (* Fixed-schema detection: identical Level-0 keyset and identical document
     order of slots across all objects. *)
  let fixed =
    if Array.length objs = 0 then None
    else begin
      let _, _, _, first = objs.(0) in
      let same =
        Array.for_all
          (fun (_, _, _, l0) ->
            Array.length l0 = Array.length first
            && Array.for_all2
                 (fun (pa, sa) (pb, sb) -> String.equal pa pb && sa = sb)
                 l0 first)
          objs
      in
      if same && Array.length first > 0 then Some first else None
    end
  in
  let path_ids = Hashtbl.create 64 in
  let names = ref [] and next_id = ref 0 in
  let path_id p =
    match Hashtbl.find_opt path_ids p with
    | Some id -> id
    | None ->
      let id = !next_id in
      if id > 0xFFFF then
        Perror.unsupported
          "json index: more than 65536 field paths (first overflowing path: %S)"
          p;
      Hashtbl.replace path_ids p id;
      names := p :: !names;
      incr next_id;
      id
  in
  let all_paths =
    match fixed with
    | Some m -> Array.to_list (Array.map fst m)
    | None ->
      let tbl = Hashtbl.create 64 in
      Array.iter
        (fun (_, _, _, l0) -> Array.iter (fun (p, _) -> Hashtbl.replace tbl p ()) l0)
        objs;
      Hashtbl.fold (fun p () acc -> p :: acc) tbl [] |> List.sort String.compare
  in
  (* register paths in a deterministic order *)
  List.iter (fun p -> ignore (path_id p)) all_paths;
  let objects =
    Array.map
      (fun (base, stop, entries, l0) ->
        (* slots stored 0-based relative to the first non-root entry *)
        let l0 = Array.to_list (Array.map (fun (p, s) -> (p, s - 1)) l0) in
        pack_object ~path_id ~keep_level0:(fixed = None) ~base ~stop entries l0)
      objs
  in
  {
    src;
    objects;
    shared = fixed;
    all_paths;
    path_ids;
    path_names = Array.of_list (List.rev !names);
  }

(* --- per-object entry access --------------------------------------------- *)

let object_span t obj =
  match t.objects.(obj) with
  | Packed { base; size; _ } -> (base, base + size)
  | Wide { w_base; w_size; _ } -> (w_base, w_base + w_size)

let paths t = t.all_paths

(* slot numbering: 0 = root, 1.. = stored entries *)
let entry_at t ~obj ~slot =
  match t.objects.(obj) with
  | Packed p ->
    if slot = 0 then { start = p.base; stop = p.base + p.size; kind = Kobj }
    else begin
      let off = 5 * (slot - 1) in
      let rel = Bytes.get_uint16_le p.pdata off in
      let len = Bytes.get_uint16_le p.pdata (off + 2) in
      let kind = kind_of_code (Bytes.get_uint8 p.pdata (off + 4)) in
      { start = p.base + rel; stop = p.base + rel + len; kind }
    end
  | Wide w ->
    if slot = 0 then { start = w.w_base; stop = w.w_base + w.w_size; kind = Kobj }
    else w.w_entries.(slot - 1)

let entry_count t ~obj =
  match t.objects.(obj) with
  | Packed p -> p.nentries + 1
  | Wide w -> Array.length w.w_entries + 1

let bsearch (arr : (string * int) array) path =
  let lo = ref 0 and hi = ref (Array.length arr - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k, v = arr.(mid) in
    let c = String.compare path k in
    if c = 0 then begin
      found := v;
      lo := !hi + 1
    end
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  if !found >= 0 then Some !found else None

let slot t path = match t.shared with Some m -> bsearch m path | None -> None

(* Level-0 lookup by interned path id, over the packed or wide layout;
   [-1] when the object lacks the field — the option-free form the
   per-tuple hot path uses. *)
let slot_by_id t ~obj ~id =
  match t.objects.(obj) with
  | Packed p ->
    let base = 5 * p.nentries in
    let lo = ref 0 and hi = ref (p.nlevel0 - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let k = Bytes.get_uint16_le p.pdata (base + (3 * mid)) in
      if k = id then begin
        found := Bytes.get_uint8 p.pdata (base + (3 * mid) + 2) + 1;
        lo := !hi + 1
      end
      else if id < k then hi := mid - 1
      else lo := mid + 1
    done;
    !found
  | Wide w ->
    let lo = ref 0 and hi = ref (Array.length w.w_level0 - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let k, s = w.w_level0.(mid) in
      if k = id then begin
        found := s + 1;
        lo := !hi + 1
      end
      else if id < k then hi := mid - 1
      else lo := mid + 1
    done;
    !found

let find_slot_by_id t ~obj ~id =
  match slot_by_id t ~obj ~id with -1 -> None | s -> Some s

let path_id t path = Hashtbl.find_opt t.path_ids path

let find_by_id t ~obj ~id =
  match find_slot_by_id t ~obj ~id with
  | Some s -> Some (entry_at t ~obj ~slot:s)
  | None -> None

(* --- allocation-free span access ----------------------------------------- *)

type span = {
  mutable sp_start : int;
  mutable sp_stop : int;
  mutable sp_kind : kind;
}

let make_span () = { sp_start = 0; sp_stop = 0; sp_kind = Knull }

let entry_span t ~obj ~slot sp =
  match t.objects.(obj) with
  | Packed p ->
    if slot = 0 then begin
      sp.sp_start <- p.base;
      sp.sp_stop <- p.base + p.size;
      sp.sp_kind <- Kobj
    end
    else begin
      let off = 5 * (slot - 1) in
      let rel = Bytes.get_uint16_le p.pdata off in
      let len = Bytes.get_uint16_le p.pdata (off + 2) in
      sp.sp_start <- p.base + rel;
      sp.sp_stop <- p.base + rel + len;
      sp.sp_kind <- kind_of_code (Bytes.get_uint8 p.pdata (off + 4))
    end
  | Wide w ->
    if slot = 0 then begin
      sp.sp_start <- w.w_base;
      sp.sp_stop <- w.w_base + w.w_size;
      sp.sp_kind <- Kobj
    end
    else begin
      let e = w.w_entries.(slot - 1) in
      sp.sp_start <- e.start;
      sp.sp_stop <- e.stop;
      sp.sp_kind <- e.kind
    end

let find_span_by_id t ~obj ~id sp =
  match slot_by_id t ~obj ~id with
  | -1 -> false
  | s ->
    entry_span t ~obj ~slot:s sp;
    true

let find t ~obj ~path =
  match t.shared with
  | Some m -> (
    match bsearch m path with
    | Some s -> if s < entry_count t ~obj then Some (entry_at t ~obj ~slot:s) else None
    | None -> None)
  | None -> (
    match path_id t path with
    | Some id -> find_by_id t ~obj ~id
    | None -> None)

(* --- span decoding ------------------------------------------------------ *)

let read_int t (e : entry) = Numparse.int_span t.src ~start:e.start ~stop:e.stop

let read_float t (e : entry) = Numparse.float_span t.src ~start:e.start ~stop:e.stop

let read_bool t (e : entry) = t.src.[e.start] = 't'

let read_string_span t ~start ~stop =
  (* The span includes the quotes; decode escapes only if present. *)
  let raw_start = start + 1 and raw_stop = stop - 1 in
  let has_escape = ref false in
  for i = raw_start to raw_stop - 1 do
    if t.src.[i] = '\\' then has_escape := true
  done;
  if not !has_escape then String.sub t.src raw_start (raw_stop - raw_start)
  else
    let s, _ = Json.parse_string_lit t.src start in
    s

let read_string t (e : entry) = read_string_span t ~start:e.start ~stop:e.stop

let read_value t (e : entry) : Value.t =
  match e.kind with
  | Kint -> Value.Int (read_int t e)
  | Kfloat -> Value.Float (read_float t e)
  | Kbool -> Value.Bool (read_bool t e)
  | Knull -> Value.Null
  | Kstr -> Value.String (read_string t e)
  | Kobj | Karr ->
    let j, _ = Json.parse t.src ~pos:e.start in
    Json.to_value j

(* Span decoders — the entry readers over a scratch span. *)
let span_int t sp = Numparse.int_span t.src ~start:sp.sp_start ~stop:sp.sp_stop

let span_float t sp =
  Numparse.float_span t.src ~start:sp.sp_start ~stop:sp.sp_stop

let span_bool t sp = t.src.[sp.sp_start] = 't'
let span_string t sp = read_string_span t ~start:sp.sp_start ~stop:sp.sp_stop

let span_value t sp =
  read_value t { start = sp.sp_start; stop = sp.sp_stop; kind = sp.sp_kind }

let kind_at src pos =
  match src.[pos] with
  | '{' -> Kobj
  | '[' -> Karr
  | '"' -> Kstr
  | 't' | 'f' -> Kbool
  | 'n' -> Knull
  | _ -> Kint (* refined below *)

(* Allocation-free element iteration for the Unnest hot path: [f] receives
   each element's span; no entry records or lists are built. *)
let iter_array_spans t (e : entry) ~f =
  let src = t.src in
  let stop = e.stop - 1 in
  let rec go i =
    let i = Json.skip_ws src i in
    if i < stop then
      if src.[i] = ',' then go (i + 1)
      else begin
        let vend = skip_value src i in
        f ~start:i ~stop:vend;
        go vend
      end
  in
  go (e.start + 1)

let array_elements t (e : entry) =
  let src = t.src in
  let stop = e.stop - 1 in
  let rec go i acc =
    let i = Json.skip_ws src i in
    if i >= stop then List.rev acc
    else if src.[i] = ',' then go (i + 1) acc
    else begin
      let vend = skip_value src i in
      let kind =
        match kind_at src i with Kint -> num_kind src i vend | k -> k
      in
      go vend ({ start = i; stop = vend; kind } :: acc)
    end
  in
  go (e.start + 1) []

(* Bounded field extraction for the Unnest code path: walk the members of
   the object span once, filling the value spans of the requested names, and
   stop as soon as all of them are found. [starts.(i) = -1] marks a missing
   field. Names are compared against the raw bytes. *)
let scan_span_fields t ~start ~stop ~names ~starts ~stops =
  let src = t.src in
  Array.fill starts 0 (Array.length starts) (-1);
  let remaining = ref (Array.length names) in
  let name_index qstart =
    let rec try_name k =
      if k >= Array.length names then -1
      else begin
        let name = names.(k) in
        let n = String.length name in
        let rec cmp i j =
          if j >= n then if src.[i] = '"' then k else try_name (k + 1)
          else if src.[i] = '\\' then begin
            (* escaped name: decode and compare outright *)
            let decoded, _ = Json.parse_string_lit src qstart in
            if String.equal decoded name then k else try_name (k + 1)
          end
          else if Char.equal src.[i] name.[j] then cmp (i + 1) (j + 1)
          else try_name (k + 1)
        in
        cmp (qstart + 1) 0
      end
    in
    try_name 0
  in
  if src.[start] <> '{' then fail start "unnest element is not an object";
  let rec members i =
    let i = Json.skip_ws src i in
    if i >= stop || src.[i] = '}' then ()
    else begin
      let slot = name_index i in
      let after_name = skip_string src i in
      let i = Json.skip_ws src after_name in
      if i >= stop || src.[i] <> ':' then fail i "expected ':'";
      let vstart = Json.skip_ws src (i + 1) in
      let vend = skip_value src vstart in
      if slot >= 0 && starts.(slot) < 0 then begin
        starts.(slot) <- vstart;
        stops.(slot) <- vend;
        decr remaining
      end;
      if !remaining > 0 then begin
        let i = Json.skip_ws src vend in
        if i < stop && src.[i] = ',' then members (i + 1)
      end
    end
  in
  members (start + 1)

let find_parts_span t ~start ~stop ~parts sp =
  (* Scan the (un-indexed) object at [start,stop) for a pre-split dotted
     path, writing the value span of the final segment into the scratch
     [sp]. This is the Unnest hot path, so field names are compared against
     the raw bytes without decoding (escaped names fall back to the
     decoder), callers pre-split the path once per query, and no entry
     records or options are built — intermediate object spans travel
     through [sp] itself. *)
  let src = t.src in
  let name_matches qstart name =
    (* qstart at the opening quote *)
    let n = String.length name in
    let rec go i j =
      if j >= n then src.[i] = '"'
      else
        match src.[i] with
        | '\\' -> (
          (* escaped name: decode properly *)
          match Json.parse_string_lit src qstart with
          | decoded, _ -> String.equal decoded name)
        | c -> Char.equal c name.[j] && go (i + 1) (j + 1)
    in
    go (qstart + 1) 0
  in
  let find_field ostart ostop name =
    (* linear scan of the object's members for [name]; on a match the
       value span lands in [sp] *)
    let rec members i =
      let i = Json.skip_ws src i in
      if i >= ostop || src.[i] = '}' then false
      else begin
        let matched = name_matches i name in
        let after = skip_string src i in
        let i = Json.skip_ws src after in
        if src.[i] <> ':' then fail i "expected ':'";
        let vstart = Json.skip_ws src (i + 1) in
        let vend = skip_value src vstart in
        if matched then begin
          sp.sp_start <- vstart;
          sp.sp_stop <- vend;
          true
        end
        else begin
          let i = Json.skip_ws src vend in
          if i < ostop && src.[i] = ',' then members (i + 1) else false
        end
      end
    in
    if src.[ostart] <> '{' then false else members (ostart + 1)
  in
  let rec follow ostart ostop = function
    | [] -> false
    | [ name ] ->
      find_field ostart ostop name
      && begin
           sp.sp_kind <-
             (match kind_at src sp.sp_start with
             | Kint -> num_kind src sp.sp_start sp.sp_stop
             | k -> k);
           true
         end
    | name :: rest ->
      find_field ostart ostop name && follow sp.sp_start sp.sp_stop rest
  in
  follow start stop parts

let find_parts_in_span t ~start ~stop ~parts =
  let sp = make_span () in
  if find_parts_span t ~start ~stop ~parts sp then
    Some { start = sp.sp_start; stop = sp.sp_stop; kind = sp.sp_kind }
  else None

let find_in_span t ~start ~stop ~path =
  find_parts_in_span t ~start ~stop ~parts:(String.split_on_char '.' path)

let byte_size t =
  let per_obj =
    Array.fold_left
      (fun acc o ->
        match o with
        | Packed p -> acc + 16 + Bytes.length p.pdata
        | Wide w -> acc + 16 + (24 * Array.length w.w_entries) + (16 * Array.length w.w_level0))
      0 t.objects
  in
  let interned =
    Array.fold_left (fun acc p -> acc + String.length p + 16) 0 t.path_names
  in
  let shared =
    match t.shared with
    | Some m -> Array.fold_left (fun acc (p, _) -> acc + String.length p + 8) 0 m
    | None -> 0
  in
  per_obj + interned + shared
