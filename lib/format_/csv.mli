(** CSV reading and writing.

    The reader operates over the raw file bytes as served by the memory
    manager — it never materializes a parsed copy of the file (queries over
    raw data, Section 5.2). Quoting: a field that starts with ["] runs to the
    closing ["] (doubled quotes escape); otherwise fields run to the next
    separator or newline. *)

open Proteus_model

type config = {
  separator : char;       (** e.g. [','] or TPC-H's ['|'] *)
  has_header : bool;
}

val default_config : config

(** {1 Writing} *)

(** [write_row buf config values] appends one CSV line. *)
val write_row : Buffer.t -> config -> Value.t array -> unit

(** [of_records config schema records] renders a full file. *)
val of_records : config -> Schema.t -> Value.t list -> string

(** {1 Reading} *)

(** [row_bounds src ~pos] is [(start, stop, next)] for the row beginning at
    [pos]: the data spans [start..stop) and the next row starts at [next]. *)
val row_bounds : string -> pos:int -> int * int * int

(** [bom_skip src] is 3 when the file starts with a UTF-8 byte-order mark,
    0 otherwise. *)
val bom_skip : string -> int

(** [data_start config src] is the offset of the first data row (skips a
    UTF-8 BOM and, when [has_header], the header row). *)
val data_start : config -> string -> int

(** [field_spans config src ~start ~stop] splits the row [start..stop) into
    field spans [(fstart, fstop)] in order. *)
val field_spans : config -> string -> start:int -> stop:int -> (int * int) list

(** [count_fields config src ~start ~stop] is the number of fields of the
    row [start..stop), without allocating spans. *)
val count_fields : config -> string -> start:int -> stop:int -> int

(** [nth_field_span config src ~start ~stop n] is the span of field [n]
    (0-based) of the row, scanning from [start]. *)
val nth_field_span : config -> string -> start:int -> stop:int -> int -> int * int

(** {1 Field decoding} — parse a span without allocating when possible. *)

val parse_int : string -> start:int -> stop:int -> int
val parse_float : string -> start:int -> stop:int -> float
val parse_bool : string -> start:int -> stop:int -> bool
val parse_string : string -> start:int -> stop:int -> string

(** [parse_value ty src ~start ~stop] boxes a field according to [ty]; the
    empty span decodes to [Null] for [Option] types. *)
val parse_value : Ptype.t -> string -> start:int -> stop:int -> Value.t

(** [read_all config schema src] parses a whole file into records (used by
    loaders of the baseline systems, not by Proteus query paths). *)
val read_all : config -> Schema.t -> string -> Value.t list

(** [row_count config src] counts data rows without parsing fields. *)
val row_count : config -> string -> int
