(** Positional structural index for CSV files (Section 5.2, after NoDB [5]).

    The index stores, for each data row, its start offset and the byte
    positions of every [N]th field. Locating field [k] then means jumping to
    the closest anchored field at or before [k] and scanning forward over at
    most [N-1] separators, instead of re-tokenizing the row from its start.

    When the file has fixed-length rows (every row the same byte length and
    every field at the same offset), the per-row machinery is dropped and
    field positions are computed arithmetically — the paper's
    "specializing per dataset contents" fast path. *)

type t

(** [build config ?every src] scans the file once. [every] is the anchor
    stride N (default 5; stride 1 anchors every field). Ragged rows (arity
    differing from the first row) are tolerated here and reported as
    [Perror.Parse_error] when the row is accessed. *)
val build : Csv.config -> ?every:int -> string -> t

val config : t -> Csv.config
val row_count : t -> int
val stride : t -> int

(** True when the fixed-width fast path is active. *)
val is_fixed_width : t -> bool

(** [row_span t row] is [(start, stop)] of the row's bytes. *)
val row_span : t -> int -> int * int

(** [field_span t ~row ~field] is the span of one field, using the anchors. *)
val field_span : t -> row:int -> field:int -> int * int

(** Number of fields per row (from the first row). *)
val arity : t -> int

(** [row_arity t row] is the actual field count of one row — equal to
    [arity t] except on ragged rows (always equal in fixed-width mode). *)
val row_arity : t -> int -> int

(** Index footprint in bytes (for the size ratios reported in Section 7.1). *)
val byte_size : t -> int
