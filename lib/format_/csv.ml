open Proteus_model

type config = { separator : char; has_header : bool }

let default_config = { separator = ','; has_header = false }

let needs_quoting config s =
  let bad c = Char.equal c config.separator || c = '\n' || c = '\r' || c = '"' in
  String.exists bad s

let write_field buf config s =
  if needs_quoting config s then begin
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  end
  else Buffer.add_string buf s

let render_value (v : Value.t) =
  match v with
  | Null -> ""
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Date d -> Date_util.to_string d
  | Float f ->
    (* Round-trippable, compact float rendering. *)
    let s = Printf.sprintf "%.12g" f in
    s
  | String s -> s
  | Record _ | Coll _ -> Perror.type_error "CSV cannot render %a" Value.pp v

let write_row buf config values =
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf config.separator;
      write_field buf config (render_value v))
    values;
  Buffer.add_char buf '\n'

let of_records config schema records =
  let names = Schema.field_names schema in
  let buf = Buffer.create 4096 in
  if config.has_header then begin
    List.iteri
      (fun i n ->
        if i > 0 then Buffer.add_char buf config.separator;
        Buffer.add_string buf n)
      names;
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun r ->
      let row =
        Array.of_list
          (List.map
             (fun n -> match Value.field_opt r n with Some v -> v | None -> Value.Null)
             names)
      in
      write_row buf config row)
    records;
  Buffer.contents buf

let row_bounds src ~pos =
  let n = String.length src in
  let rec find_eol i in_quotes =
    if i >= n then i
    else
      match src.[i] with
      | '"' -> find_eol (i + 1) (not in_quotes)
      | '\n' when not in_quotes -> i
      | _ -> find_eol (i + 1) in_quotes
  in
  let eol = find_eol pos false in
  let stop = if eol > pos && src.[eol - 1] = '\r' then eol - 1 else eol in
  (pos, stop, min n (eol + 1))

(* A UTF-8 byte-order mark before the header (common in spreadsheet
   exports) is not data; skip it so the first header/field name is clean. *)
let bom_skip src =
  if String.length src >= 3 && src.[0] = '\xef' && src.[1] = '\xbb' && src.[2] = '\xbf'
  then 3
  else 0

let data_start config src =
  let start = bom_skip src in
  if not config.has_header then start
  else
    let _, _, next = row_bounds src ~pos:start in
    next

(* Scan one field starting at [i]; returns (field_start, field_stop,
   position after the separator or [stop]). Quoted fields include their
   quotes in the span; parse_string strips them. *)
let scan_field config src ~stop i =
  if i < stop && src.[i] = '"' then begin
    let rec close j =
      if j >= stop then j
      else if src.[j] = '"' then
        if j + 1 < stop && src.[j + 1] = '"' then close (j + 2) else j + 1
      else close (j + 1)
    in
    let fstop = close (i + 1) in
    let next = if fstop < stop && src.[fstop] = config.separator then fstop + 1 else fstop in
    (i, fstop, next)
  end
  else begin
    let rec go j = if j >= stop || src.[j] = config.separator then j else go (j + 1) in
    let fstop = go i in
    let next = if fstop < stop then fstop + 1 else fstop in
    (i, fstop, next)
  end

let field_spans config src ~start ~stop =
  if start >= stop then []
  else begin
    let rec go i acc =
      let fstart, fstop, next = scan_field config src ~stop i in
      let acc = (fstart, fstop) :: acc in
      if next >= stop then List.rev acc else go next acc
    in
    go start []
  end

(* Field count of the row [start..stop); allocation-free twin of
   [field_spans] (same trailing-separator convention). *)
let count_fields config src ~start ~stop =
  if start >= stop then 0
  else begin
    let rec go i acc =
      let _, _, next = scan_field config src ~stop i in
      if next >= stop then acc + 1 else go next (acc + 1)
    in
    go start 0
  end

let nth_field_span config src ~start ~stop n =
  let rec go i k =
    let fstart, fstop, next = scan_field config src ~stop i in
    if k = n then (fstart, fstop)
    else if next >= stop then
      Perror.parse_error ~what:"csv" ~pos:start "row has fewer than %d fields" (n + 1)
    else go next (k + 1)
  in
  go start 0

let parse_int src ~start ~stop =
  try Numparse.int_span src ~start ~stop
  with Perror.Parse_error { pos; msg; _ } ->
    Perror.parse_error ~what:"csv" ~pos "bad int field: %s" msg

let parse_float src ~start ~stop =
  try Numparse.float_span src ~start ~stop with
  | Perror.Parse_error { msg; _ } ->
    Perror.parse_error ~what:"csv" ~pos:start "bad float field: %s" msg
  | Failure _ -> Perror.parse_error ~what:"csv" ~pos:start "bad float field"

let parse_bool src ~start ~stop =
  let len = stop - start in
  if len = 4 && String.sub src start 4 = "true" then true
  else if len = 5 && String.sub src start 5 = "false" then false
  else if len = 1 && src.[start] = '1' then true
  else if len = 1 && src.[start] = '0' then false
  else Perror.parse_error ~what:"csv" ~pos:start "bad bool field"

let parse_string src ~start ~stop =
  if stop > start && src.[start] = '"' && src.[stop - 1] = '"' then begin
    let buf = Buffer.create (stop - start - 2) in
    let rec go i =
      if i < stop - 1 then
        if src.[i] = '"' && i + 1 < stop - 1 && src.[i + 1] = '"' then begin
          Buffer.add_char buf '"';
          go (i + 2)
        end
        else begin
          Buffer.add_char buf src.[i];
          go (i + 1)
        end
    in
    go (start + 1);
    Buffer.contents buf
  end
  else String.sub src start (stop - start)

let rec parse_value ty src ~start ~stop : Value.t =
  match (ty : Ptype.t) with
  | Option inner ->
    if start >= stop then Value.Null else parse_value inner src ~start ~stop
  | Int -> Value.Int (parse_int src ~start ~stop)
  | Date ->
    (* dates appear as ISO strings in files; bare integers (epoch days) are
       also accepted *)
    if stop - start = 10 && src.[start + 4] = '-' then
      Value.Date (Date_util.of_span src ~start ~stop)
    else Value.Date (parse_int src ~start ~stop)
  | Float -> Value.Float (parse_float src ~start ~stop)
  | Bool -> Value.Bool (parse_bool src ~start ~stop)
  | String -> Value.String (parse_string src ~start ~stop)
  | Record _ | Collection _ ->
    Perror.type_error "CSV field of non-primitive type %a" Ptype.pp ty

let read_all config schema src =
  let fields = Schema.fields schema in
  let n = String.length src in
  let rec rows pos acc =
    if pos >= n then List.rev acc
    else
      let start, stop, next = row_bounds src ~pos in
      if start = stop then rows next acc (* skip blank line *)
      else begin
        let spans = field_spans config src ~start ~stop in
        let record =
          Value.record
            (List.map2
               (fun (f : Schema.field) (fstart, fstop) ->
                 (f.name, parse_value f.ty src ~start:fstart ~stop:fstop))
               fields spans)
        in
        rows next (record :: acc)
      end
  in
  rows (data_start config src) []

let row_count config src =
  let n = String.length src in
  let rec go pos acc =
    if pos >= n then acc
    else
      let start, stop, next = row_bounds src ~pos in
      go next (if start = stop then acc else acc + 1)
  in
  go (data_start config src) 0
