open Proteus_model
open Proteus_storage

let of_rowpage page =
  let schema = Rowpage.schema page in
  let row = ref 0 in
  let accessor idx (f : Schema.field) : Access.t =
    let off = Schema.field_offset schema f.name in
    let null =
      match f.ty with
      | Ptype.Option _ -> Some (fun () -> Rowpage.is_null page ~row:!row ~field:idx)
      | _ -> None
    in
    (* Batch fills address rows directly by OID — no cursor motion — and are
       offered only for non-nullable fields (the batch lane's contract). *)
    let bfill get = match null with
      | Some _ -> None
      | None ->
        Some
          (fun base out ~sel ~n ->
            for i = 0 to n - 1 do
              let j = sel.(i) in
              out.(j) <- get (base + j)
            done)
    in
    match Ptype.unwrap_option f.ty with
    | Ptype.Int ->
      Access.of_int ?null
        ?fill:(bfill (fun row -> Rowpage.get_int page ~row ~off))
        (fun () -> Rowpage.get_int page ~row:!row ~off)
    | Ptype.Date ->
      Access.of_date ?null
        ?fill:(bfill (fun row -> Rowpage.get_int page ~row ~off))
        (fun () -> Rowpage.get_int page ~row:!row ~off)
    | Ptype.Float ->
      Access.of_float ?null
        ?fill:(bfill (fun row -> Rowpage.get_float page ~row ~off))
        (fun () -> Rowpage.get_float page ~row:!row ~off)
    | Ptype.Bool ->
      Access.of_bool ?null
        ?fill:(bfill (fun row -> Rowpage.get_bool page ~row ~off))
        (fun () -> Rowpage.get_bool page ~row:!row ~off)
    | Ptype.String ->
      Access.of_str ?null
        ?fill:(bfill (fun row -> Rowpage.get_string page ~row ~off))
        (fun () -> Rowpage.get_string page ~row:!row ~off)
    | other ->
      Perror.type_error "binary row field %s of non-primitive type %a" f.name Ptype.pp
        other
  in
  let accessors = List.mapi (fun i f -> (f.Schema.name, accessor i f)) (Schema.fields schema) in
  let field path =
    match List.assoc_opt path accessors with
    | Some a -> a
    | None -> Perror.plan_error "binary row dataset has no field %s" path
  in
  {
    Source.element = Schema.to_type schema;
    count = Rowpage.count page;
    seek = (fun i -> row := i);
    field;
    whole = (fun () -> Rowpage.get_record page ~row:!row);
    unnest = (fun _ -> None);
    validate = None;
  }

let of_columns ~element cols =
  let count = match cols with [] -> 0 | (_, c) :: _ -> Column.length c in
  List.iter
    (fun (path, c) ->
      if Column.length c <> count then
        Perror.plan_error "column %s length %d <> %d" path (Column.length c) count)
    cols;
  let cur = ref 0 in
  let accessors =
    List.map
      (fun (path, c) ->
        let ty = try Source.field_type element path with Perror.Plan_error _ -> Ptype.Int in
        (path, Access.of_column c ~cur ty))
      cols
  in
  let field path =
    match List.assoc_opt path accessors with
    | Some a -> a
    | None -> Perror.plan_error "column set has no field %s" path
  in
  let whole () =
    Value.record (List.map (fun (path, a) -> (path, a.Access.get_val ())) accessors)
  in
  {
    Source.element;
    count;
    seek = (fun i -> cur := i);
    field;
    whole;
    unnest = (fun _ -> None);
    validate = None;
  }
