(** The plug-in runtime: builds (and memoizes) structural indexes on first
    access, collects cold-access statistics into the catalog (Section 5.2
    "Enabling Cost-based Optimizations"), and splices the caching manager
    into scans — serving cached binary columns instead of raw bytes, and
    filling new caches as a side-effect of scanning (Section 6). *)

open Proteus_catalog

type t

(** Construction cost and footprint of a structural index, for the ratios
    reported in Section 7.1. *)
type index_info = {
  size_bytes : int;
  input_bytes : int;
  build_seconds : float;
  fixed_schema : bool;  (** meaningful for JSON only *)
}

val create : ?cache:Cache_iface.t -> Catalog.t -> t

val catalog : t -> Catalog.t
val cache : t -> Cache_iface.t
val set_cache : t -> Cache_iface.t -> unit

(** A stamp bumped by {!invalidate} and {!set_cache}. Prepared engines
    capture it at staging time and re-stage when it has moved, so prepared
    statements observe dataset updates and caching-mode changes. *)
val generation : t -> int

(** [source t name] is the raw source for a dataset (builds the structural
    index on first access — the paper's "cold" query). No cache routing. *)
val source : t -> string -> Source.t

(** [fresh_source t name] is a {e new} source view over the dataset: a
    private cursor sharing the memoized read-only index with every other
    view, so parallel workers can scan the same dataset independently. The
    first access per dataset still builds the index and collects cold
    statistics exactly once. *)
val fresh_source : t -> string -> Source.t

(** [factory t name] is the dataset's source factory (building it on first
    use): each call stamps out a fresh view. Exposed so wrappers (e.g. the
    fault-injection harness) can capture the genuine factory before
    replacing it with {!install_factory}. *)
val factory : t -> string -> unit -> Source.t

(** [index_info t name] is available after the first access to a CSV or
    JSON dataset. *)
val index_info : t -> string -> index_info option

(** [materialize_field t ~dataset ~path] eagerly materializes a promoted
    JSON path into a typed cache column straight from the format index's
    slot accessors (a {e pre-parsed slot column}), so later promoted reads
    skip numparse/span decoding entirely. No-op for non-JSON datasets,
    already-cached paths, and paths the cache policy rejects; recoverable
    failures abandon the materialization silently. Wired as a promotion
    hook by the db facade. *)
val materialize_field : t -> dataset:string -> path:string -> unit

(** Whether cache hits on [(dataset, path)] are served by a pre-parsed slot
    column (observability; feeds the [slot-reads=] counter). *)
val slot_column : t -> dataset:string -> path:string -> bool

(** Invalidate the memoized index of a dataset (data updates: "drop and
    rebuild affected auxiliary structures", Section 4). Also resets the
    dataset's circuit breaker: a re-registered member starts with a clean
    circuit. *)
val invalidate : t -> string -> unit

(** {1 Resilience}

    The shard member build path runs through a resilience ladder
    (DESIGN.md section 15): a per-member circuit {!Proteus_resilience.Breaker}
    (open members are skipped without touching their plug-in), an optional
    straggler {!Proteus_resilience.Hedge}, and a configurable retry budget
    ({!Proteus_resilience.Policy}) replacing the historical rebuild-once. *)

(** A factory interposer: [ip name genuine] wraps the genuine source
    factory of dataset [name]. Applied at every factory {e resolution},
    so — unlike {!install_factory} wrappers — it survives the retry
    path's invalidations. The fault-injection harness uses it for latency
    stalls and flaky members. *)
type interposer = string -> (unit -> Source.t) -> unit -> Source.t

(** Install (or clear) the interposer; resolved factories are dropped so
    the change takes effect on the next build. *)
val set_interposer : t -> interposer option -> unit

val interposer : t -> interposer option

(** The retry budget of shard member builds. The default,
    {!Proteus_resilience.Policy.default} (2 attempts), preserves the
    historical rebuild-once-from-scratch contract. *)
val set_retry_policy : t -> Proteus_resilience.Policy.t -> unit

val retry_policy : t -> Proteus_resilience.Policy.t

(** The straggler hedge over member builds; [None] (the default) disables
    hedging. Only armed under [Fail_fast] — degraded policies record
    per-row errors into shared report cells, and a speculative duplicate
    would double-account them. *)
val set_hedge : t -> Proteus_resilience.Hedge.t option -> unit

val hedge : t -> Proteus_resilience.Hedge.t option

(** Breaker thresholds for member circuits; existing breakers are dropped
    and recreated under the new config on next admission. *)
val set_breaker_config : t -> Proteus_resilience.Breaker.config -> unit

(** Current breaker states, sorted by member name — the server's [health]
    verb. Only members that have been admitted at least once appear. *)
val breaker_states : t -> (string * Proteus_resilience.Breaker.state) list

(** Whether [name]'s breaker is currently rejecting admissions (open,
    still cooling). Read-only — never claims the half-open probe slot;
    the engine's shard arm consults this to skip digest work for members
    the scatter will skip anyway. *)
val breaker_blocked : t -> string -> bool

(** A segmented cache-fill in flight: per-range column builders keyed by
    their start row, committed in ascending start order with one [Array.blit]
    per segment — so a parallel cold run installs columns bit-identical to a
    serial fill. Created by a filling {!scan} (which owns its lifecycle
    inside [sc_run]); shared across the {!scan_view}s of a parallel fleet,
    whose driver runs {!session_arm} before the run, {!session_commit} after
    a clean one, and {!session_release} when the run raises. A session whose
    run recorded errors (skipped rows leave compacted, hole-y segments) is
    quarantined at commit, never installed — the DESIGN.md section 10
    install-on-commit contract, kept on the morsel spine. *)
type fill_session

val session_arm : fill_session -> unit
val session_commit : fill_session -> unit
val session_release : fill_session -> unit
val session_dataset : fill_session -> string

(** A cache-aware scan over one dataset. *)
type scan = {
  sc_source : Source.t;
      (** like {!source}, but [field] serves cache-hit paths from their
          binary cache columns *)
  sc_count : int;  (** row count of the underlying source *)
  sc_run : on_tuple:(unit -> unit) -> unit;
      (** full scan; populates cache columns for the required paths the
          policy elects (one whole-dataset segment, committed at scan end) *)
  sc_run_range : lo:int -> hi:int -> on_tuple:(unit -> unit) -> unit;
      (** scan one OID morsel [lo, hi); on a view with a shared session it
          fills one cache segment keyed by [lo] as a side effect *)
  sc_run_batches : batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
      (** full scan as fixed-size batches (the batch lane's driver); never
          fills inline — the driver fills per batch through [sc_fill_sel] *)
  sc_run_range_batches :
    lo:int -> hi:int -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
      (** one OID morsel as batches; never fills inline *)
  sc_fills : bool;
      (** whether driving this scan fills cache columns as a side effect
          (serial filling scan, or view wired to a shared fill session) *)
  sc_fill : fill_session option;
      (** the scan's fill session: a filling {!scan} exposes its private
          session here so a driver that bypasses [sc_run] (the batch lane,
          the parallel engine) can run the arm/commit/release lifecycle and
          share the session with per-worker views *)
  sc_fill_sel : (base:int -> sel:int array -> n:int -> unit) option;
      (** [sc_fill_sel ~base ~sel ~n] fills rows [base + sel.(0..n-1)] into
          a fresh segment keyed by [base] — the batch lane's fill: called on
          the probe-surviving selection of each batch, before query filters
          narrow it. Vector-capable paths gather through the plug-in's
          native batch fill; the rest seek per selected row. *)
  sc_cache_hits : string list;  (** required paths served from cache *)
  sc_probe : (unit -> unit) option;
      (** reads every fallible accessor the query requires at the current
          cursor (plus the format's structural validator and, when [whole],
          the boxed element) — the Skip_row commit test. [None] when the
          scan cannot fail (all paths cache-routed or binary). *)
  sc_dataset : string;  (** dataset name, for error attribution *)
}

(** [scan t ~dataset ~required] prepares a scan reading the [required]
    dotted paths. [whole] declares that the consumer also reconstructs
    whole elements (Volcano-style [Whole] requirements), so the Skip_row
    probe must cover the full element, not just [required]. Scan drivers
    honour the active {!Proteus_model.Fault} policy: they skip faulty rows
    (probe-then-commit), check the cancellation token at row-chunk
    boundaries, and quarantine cache fills of runs that saw errors. *)
val scan : ?whole:bool -> t -> dataset:string -> required:string list -> scan

(** [scan_view t ~dataset ~required] is like {!scan} but over a
    {!fresh_source} view and with no private cache filling — the per-worker
    scan of morsel-driven parallel execution. Cache-hit paths still route
    to their (read-only) cache columns. Passing [?session] (a filling scan's
    [sc_fill]) makes the view fill that shared session's elected paths
    through its own raw accessors: each [sc_run_range] morsel (tuple lane)
    or [sc_fill_sel] batch (batch lane) lands in its own segment, and the
    fleet driver commits them in row order — the parallel cold run. *)
val scan_view :
  ?whole:bool -> ?session:fill_session -> t -> dataset:string ->
  required:string list -> scan

(** [install_factory t name f] replaces the source factory of a registered
    dataset — the hook the fault-injection test harness uses to wrap real
    sources with failing accessors. The shared source view is replaced
    eagerly so cold statistics are not re-collected through [f]. *)
val install_factory : t -> string -> (unit -> Source.t) -> unit

(** {1 Shard sets}

    A dataset may be a {e shard set}: an ordered list of immutable member
    datasets (each its own file and plug-in instance) scanned as one
    concatenated row space. The concatenated view enumerates rows in
    member order, so sharded execution is bit-identical to a single file
    holding the same rows; the engine additionally prunes shards whose
    digests prove a pushed-down conjunct empty (DESIGN.md section 14). *)

(** One shard's slice of the concatenated row space. *)
type shard_info = { sh_member : string; sh_offset : int; sh_rows : int }

(** Pruning digest of one (member, path): row/non-null counts, min/max
    over the numeric non-null values, and a Bloom filter over canonical
    keys. [sd_all_numeric] gates ordering tests, [sd_keyed] gates
    Bloom-absence tests — see DESIGN.md section 14 for soundness w.r.t.
    [Expr.cmp] Null/float semantics. *)
type shard_digest = {
  sd_rows : int;
  sd_nonnull : int;
  sd_min : float;
  sd_max : float;
  sd_all_numeric : bool;
  sd_keyed : bool;
  sd_bloom : Proteus_storage.Bloom.t;
}

(** [register_shard_set t ~name ~members] registers [name] as a shard set
    over the already-registered [members] (which must share one element
    type) and gives it a catalog entry of its own. Raises [Plan_error] on
    an empty member list, element mismatch, or unknown member. *)
val register_shard_set : t -> name:string -> members:string list -> unit

(** [add_shard t ~name ~member] appends one more (already-registered)
    member to a shard set — the immutable-shard growth path. *)
val add_shard : t -> name:string -> member:string -> unit

(** [shard_members t name] is the member list when [name] is a shard set. *)
val shard_members : t -> string -> string list option

(** [shard_parents t name] lists the shard sets containing [name]. *)
val shard_parents : t -> string -> string list

(** [shards t name] is the shard layout the engine prunes against —
    offsets and row counts in member order, matching the views the parent
    factory last stamped out (a degraded member shows as an empty shard).
    [None] for ordinary datasets. *)
val shards : t -> string -> shard_info array option

(** [shard_digest t ~member ~path] builds (lazily, memoized) the pruning
    digest of one member for one dotted path. [None] when the digest is
    unobtainable (unknown path, degraded member) — pruning stands down. *)
val shard_digest : t -> member:string -> path:string -> shard_digest option
