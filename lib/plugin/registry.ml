open Proteus_model
open Proteus_catalog
module Csv_index = Proteus_format.Csv_index
module Json_index = Proteus_format.Json_index

let src_log = Logs.Src.create "proteus.plugin" ~doc:"Proteus input plug-ins"

module Log = (val Logs.src_log src_log : Logs.LOG)

type index_info = {
  size_bytes : int;
  input_bytes : int;
  build_seconds : float;
  fixed_schema : bool;
}

type t = {
  catalog : Catalog.t;
  mutable cache : Cache_iface.t;
  sources : (string, Source.t) Hashtbl.t;
  factories : (string, unit -> Source.t) Hashtbl.t;
  infos : (string, index_info) Hashtbl.t;
}

let create ?(cache = Cache_iface.disabled) catalog =
  {
    catalog;
    cache;
    sources = Hashtbl.create 16;
    factories = Hashtbl.create 16;
    infos = Hashtbl.create 16;
  }

let catalog t = t.catalog
let cache t = t.cache
let set_cache t c = t.cache <- c

(* Cold-access statistics: cardinality plus min/max of numeric top-level
   fields, observed through the freshly built source — in a single pass
   that observes every numeric path per seek. *)
let collect_stats t (d : Dataset.t) (src : Source.t) =
  let stats = Catalog.stats t.catalog d.name in
  Stats.set_cardinality stats src.Source.count;
  let numeric_paths =
    match d.element with
    | Ptype.Record fields ->
      List.filter_map
        (fun (name, ty) ->
          match Ptype.unwrap_option ty with
          | Ptype.Int | Ptype.Float | Ptype.Date -> Some name
          | _ -> None)
        fields
    | _ -> []
  in
  let accessors =
    List.filter_map
      (fun path ->
        match src.Source.field path with
        | access -> Some (path, access)
        | exception Perror.Plan_error _ -> None)
      numeric_paths
  in
  if accessors <> [] then
    for i = 0 to src.Source.count - 1 do
      src.Source.seek i;
      List.iter
        (fun (path, access) ->
          match access.Access.get_val () with
          | v -> Stats.observe stats path v
          | exception Perror.Type_error _ -> ())
        accessors
    done

(* The heavy per-dataset artifacts (parsed row pages, structural indexes)
   are built once; the returned thunk stamps out cheap source views — each
   a private cursor plus accessors over the shared read-only artifact, so
   parallel workers can scan the same dataset independently. *)
let build_factory t (d : Dataset.t) : unit -> Source.t =
  match d.format, d.location with
  | Dataset.Binary_row, Dataset.Rows page -> fun () -> Binary_plugin.of_rowpage page
  | Dataset.Binary_column, Dataset.Columns cols ->
    fun () -> Binary_plugin.of_columns ~element:d.element cols
  | Dataset.Binary_row, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let page =
      Proteus_storage.Rowpage.of_bytes (Dataset.schema d) (Bytes.of_string bytes)
    in
    fun () -> Binary_plugin.of_rowpage page
  | Dataset.Csv config, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = Csv_index.build config bytes in
    let info =
      {
        size_bytes = Csv_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Csv_index.is_fixed_width index;
      }
    in
    Hashtbl.replace t.infos d.name info;
    Log.info (fun m ->
        m "built CSV index for %s: %d rows, %.1f%% of input" d.name
          (Csv_index.row_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes)));
    let schema = Dataset.schema d in
    fun () -> Csv_plugin.make ~config ~schema ~index ~src:bytes
  | Dataset.Json, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = Json_index.build bytes in
    let info =
      {
        size_bytes = Json_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Json_index.is_fixed_schema index;
      }
    in
    Hashtbl.replace t.infos d.name info;
    Log.info (fun m ->
        m "built JSON index for %s: %d objects, %.1f%% of input%s" d.name
          (Json_index.object_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes))
          (if info.fixed_schema then " (fixed schema)" else ""));
    let element = d.element in
    fun () -> Json_plugin.make ~element ~index
  | (Dataset.Csv _ | Dataset.Json), (Dataset.Rows _ | Dataset.Columns _)
  | Dataset.Binary_row, Dataset.Columns _
  | Dataset.Binary_column, (Dataset.File _ | Dataset.Blob _ | Dataset.Rows _) ->
    Perror.plan_error "dataset %s: location does not match format %s" d.name
      (Dataset.format_name d.format)

let factory t name =
  match Hashtbl.find_opt t.factories name with
  | Some f -> f
  | None ->
    let d = Catalog.find t.catalog name in
    let f = build_factory t d in
    Hashtbl.replace t.factories name f;
    f

let source t name =
  match Hashtbl.find_opt t.sources name with
  | Some s -> s
  | None ->
    let d = Catalog.find t.catalog name in
    let s = factory t name () in
    Hashtbl.replace t.sources name s;
    collect_stats t d s;
    s

let fresh_source t name =
  (* first access still goes through [source] so index building and cold
     statistics happen exactly once *)
  ignore (source t name);
  factory t name ()

let index_info t name = Hashtbl.find_opt t.infos name

let invalidate t name =
  Hashtbl.remove t.sources name;
  Hashtbl.remove t.factories name;
  Hashtbl.remove t.infos name

type scan = {
  sc_source : Source.t;
  sc_count : int;
  sc_run : on_tuple:(unit -> unit) -> unit;
  sc_run_range : lo:int -> hi:int -> on_tuple:(unit -> unit) -> unit;
  sc_run_batches : batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_run_range_batches :
    lo:int -> hi:int -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_fills : bool;
  sc_cache_hits : string list;
}

(* A cache fill: evaluates one path per row into a column builder, using the
   typed fast path when the accessor offers one. *)
let make_fill (access : Access.t) builder : unit -> unit =
  let open Proteus_storage.Column in
  match access.Access.is_null, access.Access.get_int, access.Access.get_float,
        access.Access.get_bool, access.Access.get_str with
  | None, Some get, _, _, _ -> fun () -> Builder.add_int builder (get ())
  | None, _, Some get, _, _ -> fun () -> Builder.add_float builder (get ())
  | None, _, _, Some get, _ -> fun () -> Builder.add_bool builder (get ())
  | None, _, _, _, Some get -> fun () -> Builder.add_string builder (get ())
  | _ -> fun () -> Builder.add_value builder (access.Access.get_val ())

let scan_of t ~dataset ~required ~(raw : Source.t) ~fill =
  let d = Catalog.find t.catalog dataset in
  let oid = ref 0 in
  let bias = Dataset.bias d.format in
  (* Route each required path: cache hit -> column accessor; miss elected by
     the policy -> raw accessor + fill into a fresh cache column. *)
  let routed = Hashtbl.create 8 in
  let to_fill = ref [] in
  let hits = ref [] in
  List.iter
    (fun path ->
      match t.cache.Cache_iface.lookup_field ~dataset ~path with
      | Some col ->
        let ty = Source.field_type d.element path in
        Hashtbl.replace routed path (Access.of_column col ~cur:oid ty);
        hits := path :: !hits
      | None ->
        if fill then
          let ty = try Some (Source.field_type d.element path) with Perror.Plan_error _ -> None in
          (match ty with
          | Some ty
            when Ptype.is_primitive (Ptype.unwrap_option ty)
                 && t.cache.Cache_iface.should_cache_field ~dataset ~path ~ty ->
            to_fill := (path, ty, raw.Source.field path) :: !to_fill
          | _ -> ()))
    required;
  let field path =
    match Hashtbl.find_opt routed path with
    | Some a -> a
    | None -> raw.Source.field path
  in
  let seek i =
    raw.Source.seek i;
    oid := i
  in
  let sc_source = { raw with Source.field; seek } in
  let sc_run ~on_tuple =
    match !to_fill with
    | [] -> Source.run sc_source ~on_tuple
    | to_fill ->
      (* Builders are created per run so that re-executing the compiled
         query cannot append duplicate rows to a cache column. *)
      let fills =
        List.map
          (fun (path, ty, access) ->
            let builder = Proteus_storage.Column.Builder.create ty in
            (path, builder, make_fill access builder))
          to_fill
      in
      for i = 0 to raw.Source.count - 1 do
        seek i;
        List.iter (fun (_, _, fill) -> fill ()) fills;
        on_tuple ()
      done;
      List.iter
        (fun (path, builder, _) ->
          t.cache.Cache_iface.store_field ~dataset ~path ~bias
            (Proteus_storage.Column.Builder.finish builder))
        fills
  in
  let sc_run_range ~lo ~hi ~on_tuple = Source.run_range sc_source ~lo ~hi ~on_tuple in
  let sc_run_batches ~batch ~on_batch =
    match !to_fill with
    | [] -> Source.run_batches sc_source ~batch ~on_batch
    | to_fill ->
      (* Filling scans materialize whole batches: every row of the batch is
         seeked and appended to the cache builders *before* the batch is
         handed to the (possibly filtering) consumer, so cache columns come
         out identical to the tuple lane's. *)
      let fills =
        List.map
          (fun (path, ty, access) ->
            let builder = Proteus_storage.Column.Builder.create ty in
            (path, builder, make_fill access builder))
          to_fill
      in
      Source.run_batches sc_source ~batch ~on_batch:(fun ~base ~len ->
          for i = base to base + len - 1 do
            seek i;
            List.iter (fun (_, _, fill) -> fill ()) fills
          done;
          on_batch ~base ~len);
      List.iter
        (fun (path, builder, _) ->
          t.cache.Cache_iface.store_field ~dataset ~path ~bias
            (Proteus_storage.Column.Builder.finish builder))
        fills
  in
  let sc_run_range_batches ~lo ~hi ~batch ~on_batch =
    Source.run_range_batches sc_source ~lo ~hi ~batch ~on_batch
  in
  {
    sc_source;
    sc_count = raw.Source.count;
    sc_run;
    sc_run_range;
    sc_run_batches;
    sc_run_range_batches;
    sc_fills = !to_fill <> [];
    sc_cache_hits = List.rev !hits;
  }

let scan t ~dataset ~required =
  scan_of t ~dataset ~required ~raw:(source t dataset) ~fill:true

let scan_view t ~dataset ~required =
  scan_of t ~dataset ~required ~raw:(fresh_source t dataset) ~fill:false
