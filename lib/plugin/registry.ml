open Proteus_model
open Proteus_catalog
module Csv_index = Proteus_format.Csv_index
module Json_index = Proteus_format.Json_index

let src_log = Logs.Src.create "proteus.plugin" ~doc:"Proteus input plug-ins"

module Log = (val Logs.src_log src_log : Logs.LOG)

type index_info = {
  size_bytes : int;
  input_bytes : int;
  build_seconds : float;
  fixed_schema : bool;
}

type t = {
  catalog : Catalog.t;
  mutable cache : Cache_iface.t;
  sources : (string, Source.t) Hashtbl.t;
  factories : (string, unit -> Source.t) Hashtbl.t;
  infos : (string, index_info) Hashtbl.t;
}

let create ?(cache = Cache_iface.disabled) catalog =
  {
    catalog;
    cache;
    sources = Hashtbl.create 16;
    factories = Hashtbl.create 16;
    infos = Hashtbl.create 16;
  }

let catalog t = t.catalog
let cache t = t.cache
let set_cache t c = t.cache <- c

(* Cold-access statistics: cardinality plus min/max of numeric top-level
   fields, observed through the freshly built source — in a single pass
   that observes every numeric path per seek. *)
let collect_stats t (d : Dataset.t) (src : Source.t) =
  let stats = Catalog.stats t.catalog d.name in
  Stats.set_cardinality stats src.Source.count;
  let numeric_paths =
    match d.element with
    | Ptype.Record fields ->
      List.filter_map
        (fun (name, ty) ->
          match Ptype.unwrap_option ty with
          | Ptype.Int | Ptype.Float | Ptype.Date -> Some name
          | _ -> None)
        fields
    | _ -> []
  in
  let accessors =
    List.filter_map
      (fun path ->
        match src.Source.field path with
        | access -> Some (path, access)
        | exception Perror.Plan_error _ -> None)
      numeric_paths
  in
  if accessors <> [] then
    for i = 0 to src.Source.count - 1 do
      if i land 1023 = 0 then Fault.check_cancel ();
      src.Source.seek i;
      List.iter
        (fun (path, access) ->
          match access.Access.get_val () with
          | v -> Stats.observe stats path v
          | exception Perror.Type_error _ -> ()
          (* statistics are advisory: under a degraded error policy a
             corrupt field must not abort the query from the stats pass
             (the scan's own accounting owns error reporting) *)
          | exception Perror.Parse_error _
            when Fault.skipping () || Fault.null_filling () ->
            ())
        accessors
    done

(* Index-build failures name the dataset: the byte offset alone is useless
   to a user when a query touches several files. *)
let with_dataset_context name f =
  try f () with
  | Perror.Parse_error { what; pos; msg } ->
    raise (Perror.Parse_error { what = what ^ ":" ^ name; pos; msg })
  | Perror.Unsupported m -> Perror.unsupported "%s (dataset %s)" m name

(* The heavy per-dataset artifacts (parsed row pages, structural indexes)
   are built once; the returned thunk stamps out cheap source views — each
   a private cursor plus accessors over the shared read-only artifact, so
   parallel workers can scan the same dataset independently. *)
let build_factory t (d : Dataset.t) : unit -> Source.t =
  match d.format, d.location with
  | Dataset.Binary_row, Dataset.Rows page -> fun () -> Binary_plugin.of_rowpage page
  | Dataset.Binary_column, Dataset.Columns cols ->
    fun () -> Binary_plugin.of_columns ~element:d.element cols
  | Dataset.Binary_row, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let page =
      Proteus_storage.Rowpage.of_bytes (Dataset.schema d) (Bytes.of_string bytes)
    in
    fun () -> Binary_plugin.of_rowpage page
  | Dataset.Csv config, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = with_dataset_context d.name (fun () -> Csv_index.build config bytes) in
    let info =
      {
        size_bytes = Csv_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Csv_index.is_fixed_width index;
      }
    in
    Hashtbl.replace t.infos d.name info;
    Log.info (fun m ->
        m "built CSV index for %s: %d rows, %.1f%% of input" d.name
          (Csv_index.row_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes)));
    let schema = Dataset.schema d in
    fun () -> Csv_plugin.make ~config ~schema ~index ~src:bytes
  | Dataset.Json, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = with_dataset_context d.name (fun () -> Json_index.build bytes) in
    let info =
      {
        size_bytes = Json_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Json_index.is_fixed_schema index;
      }
    in
    Hashtbl.replace t.infos d.name info;
    Log.info (fun m ->
        m "built JSON index for %s: %d objects, %.1f%% of input%s" d.name
          (Json_index.object_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes))
          (if info.fixed_schema then " (fixed schema)" else ""));
    let element = d.element in
    fun () -> Json_plugin.make ~element ~index
  | (Dataset.Csv _ | Dataset.Json), (Dataset.Rows _ | Dataset.Columns _)
  | Dataset.Binary_row, Dataset.Columns _
  | Dataset.Binary_column, (Dataset.File _ | Dataset.Blob _ | Dataset.Rows _) ->
    Perror.plan_error "dataset %s: location does not match format %s" d.name
      (Dataset.format_name d.format)

let factory t name =
  match Hashtbl.find_opt t.factories name with
  | Some f -> f
  | None ->
    let d = Catalog.find t.catalog name in
    let f = build_factory t d in
    Hashtbl.replace t.factories name f;
    f

let source t name =
  match Hashtbl.find_opt t.sources name with
  | Some s -> s
  | None ->
    let d = Catalog.find t.catalog name in
    let s = factory t name () in
    Hashtbl.replace t.sources name s;
    collect_stats t d s;
    s

let fresh_source t name =
  (* first access still goes through [source] so index building and cold
     statistics happen exactly once *)
  ignore (source t name);
  factory t name ()

let index_info t name = Hashtbl.find_opt t.infos name

(* Swap in a replacement factory — the fault-injection harness wraps the
   real source with failing accessors this way. The shared source is
   replaced immediately (not lazily) so cold-statistics collection, which
   already happened over the genuine source, is not re-run over the
   injected one. The dataset must already be registered. *)
let install_factory t name f =
  Hashtbl.replace t.factories name f;
  Hashtbl.replace t.sources name (f ())

let invalidate t name =
  Hashtbl.remove t.sources name;
  Hashtbl.remove t.factories name;
  Hashtbl.remove t.infos name

type scan = {
  sc_source : Source.t;
  sc_count : int;
  sc_run : on_tuple:(unit -> unit) -> unit;
  sc_run_range : lo:int -> hi:int -> on_tuple:(unit -> unit) -> unit;
  sc_run_batches : batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_run_range_batches :
    lo:int -> hi:int -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_fills : bool;
  sc_cache_hits : string list;
  sc_probe : (unit -> unit) option;
  sc_dataset : string;
}

(* A cache fill: evaluates one path per row into a column builder, using the
   typed fast path when the accessor offers one. *)
let make_fill (access : Access.t) builder : unit -> unit =
  let open Proteus_storage.Column in
  match access.Access.is_null, access.Access.get_int, access.Access.get_float,
        access.Access.get_bool, access.Access.get_str with
  | None, Some get, _, _, _ -> fun () -> Builder.add_int builder (get ())
  | None, _, Some get, _, _ -> fun () -> Builder.add_float builder (get ())
  | None, _, _, Some get, _ -> fun () -> Builder.add_bool builder (get ())
  | None, _, _, _, Some get -> fun () -> Builder.add_string builder (get ())
  | _ -> fun () -> Builder.add_value builder (access.Access.get_val ())

let scan_of t ~dataset ~required ~whole ~(raw : Source.t) ~fill =
  let d = Catalog.find t.catalog dataset in
  let oid = ref 0 in
  let bias = Dataset.bias d.format in
  (* Null_fill wraps each raw accessor so a recoverable parse failure reads
     as [Value.Null] (accounted per field). The wrapper is boxed-only, so
     downstream batch kernels fall back to the scalar-within-selection
     path automatically — faults never corrupt a vectorized lane. *)
  let null_wrap (a : Access.t) =
    Access.boxed
      (Ptype.Option (Ptype.unwrap_option a.Access.ty))
      (fun () ->
        try a.Access.get_val ()
        with e when Fault.recoverable e ->
          Fault.record_null ~source:dataset ~row:!oid e;
          Value.Null)
  in
  (* Route each required path: cache hit -> column accessor; miss elected by
     the policy -> raw accessor + fill into a fresh cache column. Under
     Null_fill no fills are elected: a column with substituted nulls must
     never be installed as if it were the field's true contents. *)
  let routed = Hashtbl.create 8 in
  let to_fill = ref [] in
  let hits = ref [] in
  List.iter
    (fun path ->
      match t.cache.Cache_iface.lookup_field ~dataset ~path with
      | Some col ->
        let ty = Source.field_type d.element path in
        Hashtbl.replace routed path (Access.of_column col ~cur:oid ty);
        hits := path :: !hits
      | None ->
        if fill && not (Fault.null_filling ()) then
          let ty = try Some (Source.field_type d.element path) with Perror.Plan_error _ -> None in
          (match ty with
          | Some ty
            when Ptype.is_primitive (Ptype.unwrap_option ty)
                 && t.cache.Cache_iface.should_cache_field ~dataset ~path ~ty ->
            to_fill := (path, ty, raw.Source.field path) :: !to_fill
          | _ -> ()))
    required;
  let field path =
    match Hashtbl.find_opt routed path with
    | Some a -> a
    | None ->
      let a = raw.Source.field path in
      if Fault.null_filling () then null_wrap a else a
  in
  let seek i =
    raw.Source.seek i;
    oid := i
  in
  let sc_source = { raw with Source.field; seek } in
  (* Skip_row is probe-then-commit: before a row enters the pipeline, read
     every fallible accessor the query needs at that row (cache-routed paths
     are infallible and skipped) plus the format's structural validator.
     A row that probes clean cannot fail downstream, so operators, fills and
     aggregates only ever see the valid subset — which is what makes skip
     runs bit-identical to a clean run over that subset. *)
  let probe =
    let parts =
      List.filter_map
        (fun path ->
          if Hashtbl.mem routed path then None
          else
            match raw.Source.field path with
            | a -> Some (fun () -> ignore (a.Access.get_val ()))
            | exception Perror.Plan_error _ -> None)
        required
    in
    let parts =
      if whole then parts @ [ (fun () -> ignore (raw.Source.whole ())) ] else parts
    in
    let parts =
      match raw.Source.validate with Some v -> v :: parts | None -> parts
    in
    match parts with
    | [] -> None
    | parts -> Some (fun () -> List.iter (fun f -> f ()) parts)
  in
  (* Policy-aware tuple loop: checks the cancellation token every 1024 rows
     and, under Skip_row, drops rows whose probe fails. *)
  let policy_run ~lo ~hi ~on_tuple =
    match probe with
    | Some p when Fault.skipping () ->
      for i = lo to hi - 1 do
        if i land 1023 = 0 then Fault.check_cancel ();
        seek i;
        match p () with
        | () -> on_tuple ()
        | exception e when Fault.recoverable e ->
          Fault.record_skip ~source:dataset ~row:i e
      done
    | _ ->
      for i = lo to hi - 1 do
        if i land 1023 = 0 then Fault.check_cancel ();
        seek i;
        on_tuple ()
      done
  in
  let make_fills to_fill =
    (* Builders are created per run so that re-executing the compiled
       query cannot append duplicate rows to a cache column. *)
    List.map
      (fun (path, ty, access) ->
        let builder = Proteus_storage.Column.Builder.create ty in
        (path, builder, make_fill access builder))
      to_fill
  in
  (* Install-on-commit: a fill whose producing run recorded any error (rows
     skipped -> hole-y column) or died mid-scan (abort, cancellation,
     budget) is discarded and counted as quarantined, never stored. *)
  let commit_fills fills ~ok =
    if ok then
      List.iter
        (fun (path, builder, _) ->
          t.cache.Cache_iface.store_field ~dataset ~path ~bias
            (Proteus_storage.Column.Builder.finish builder))
        fills
    else
      List.iter
        (fun (path, _, _) ->
          t.cache.Cache_iface.quarantine ~id:(dataset ^ "." ^ path))
        fills
  in
  let sc_run ~on_tuple =
    match !to_fill with
    | [] ->
      if Fault.active () then policy_run ~lo:0 ~hi:raw.Source.count ~on_tuple
      else Source.run sc_source ~on_tuple
    | to_fill ->
      let fills = make_fills to_fill in
      let e0 = Fault.errors_total () in
      let do_fills () = List.iter (fun (_, _, fill) -> fill ()) fills in
      (try
         policy_run ~lo:0 ~hi:raw.Source.count ~on_tuple:(fun () ->
             do_fills ();
             on_tuple ())
       with e ->
         commit_fills fills ~ok:false;
         raise e);
      commit_fills fills ~ok:(Fault.errors_total () = e0)
  in
  let sc_run_range ~lo ~hi ~on_tuple =
    if Fault.active () then policy_run ~lo ~hi ~on_tuple
    else Source.run_range sc_source ~lo ~hi ~on_tuple
  in
  let sc_run_batches ~batch ~on_batch =
    match !to_fill with
    | [] -> Source.run_batches sc_source ~batch ~on_batch
    | to_fill ->
      (* Filling scans materialize whole batches: every row of the batch is
         seeked and appended to the cache builders *before* the batch is
         handed to the (possibly filtering) consumer, so cache columns come
         out identical to the tuple lane's. Under an active error policy the
         engine keeps filling scans off the batch lane, so this path only
         needs abort quarantine, not per-row skipping. *)
      let fills = make_fills to_fill in
      let e0 = Fault.errors_total () in
      (try
         Source.run_batches sc_source ~batch ~on_batch:(fun ~base ~len ->
             for i = base to base + len - 1 do
               seek i;
               List.iter (fun (_, _, fill) -> fill ()) fills
             done;
             on_batch ~base ~len)
       with e ->
         commit_fills fills ~ok:false;
         raise e);
      commit_fills fills ~ok:(Fault.errors_total () = e0)
  in
  let sc_run_range_batches ~lo ~hi ~batch ~on_batch =
    Source.run_range_batches sc_source ~lo ~hi ~batch ~on_batch
  in
  {
    sc_source;
    sc_count = raw.Source.count;
    sc_run;
    sc_run_range;
    sc_run_batches;
    sc_run_range_batches;
    sc_fills = !to_fill <> [];
    sc_cache_hits = List.rev !hits;
    sc_probe = probe;
    sc_dataset = dataset;
  }

let scan ?(whole = false) t ~dataset ~required =
  scan_of t ~dataset ~required ~whole ~raw:(source t dataset) ~fill:true

let scan_view ?(whole = false) t ~dataset ~required =
  scan_of t ~dataset ~required ~whole ~raw:(fresh_source t dataset) ~fill:false
