open Proteus_model
open Proteus_catalog
module Csv_index = Proteus_format.Csv_index
module Json_index = Proteus_format.Json_index

let src_log = Logs.Src.create "proteus.plugin" ~doc:"Proteus input plug-ins"

module Log = (val Logs.src_log src_log : Logs.LOG)

type index_info = {
  size_bytes : int;
  input_bytes : int;
  build_seconds : float;
  fixed_schema : bool;
}

(* One shard of a shard set: a member dataset plus its slice of the global
   row space. Offsets are assigned in member order, so the concatenated
   view enumerates rows exactly as one file holding the shards in sequence
   would — the root of the sharded == single-file bit-identity contract. *)
type shard_info = { sh_member : string; sh_offset : int; sh_rows : int }

(* Per-(shard, path) pruning digest, built lazily on first use and
   memoized. [sd_min]/[sd_max] span the {e numeric} non-null values only
   (under [Expr.cmp], a numeric constant can only ever equal or order
   against numeric values — see DESIGN.md section 14 for the soundness
   argument); [sd_all_numeric] says no non-null non-numeric value exists,
   which ordering tests require; [sd_keyed] says every non-null value got
   a canonical Bloom key (numerics and strings do, bools/records do not),
   which Bloom-absence pruning requires. *)
type shard_digest = {
  sd_rows : int;
  sd_nonnull : int;
  sd_min : float;
  sd_max : float;
  sd_all_numeric : bool;
  sd_keyed : bool;
  sd_bloom : Proteus_storage.Bloom.t;
}

(* A factory interposer: wraps every factory thunk as it is (re)resolved,
   so injected behaviour (latency, flakiness — the resilience test
   harness) survives the invalidations the retry path performs. [None]
   restores genuine factories on the next resolution. *)
type interposer = string -> (unit -> Source.t) -> unit -> Source.t

type t = {
  catalog : Catalog.t;
  mutable cache : Cache_iface.t;
  sources : (string, Source.t) Hashtbl.t;
  factories : (string, unit -> Source.t) Hashtbl.t;
  infos : (string, index_info) Hashtbl.t;
  shard_sets : (string, string list) Hashtbl.t;
  shard_layouts : (string, shard_info array) Hashtbl.t;
      (* refreshed on every parent view build, so layouts track member
         heal/degrade transitions *)
  digests : (string, shard_digest option) Hashtbl.t;
      (* keyed [member ^ "\x00" ^ path]; [None] memoizes "no digest
         obtainable" only transiently (failures are not memoized) *)
  shard_mu : Mutex.t;
      (* guards [digests] and [breakers]: arms and member builds run
         concurrently *)
  build_mu : Mutex.t;
      (* guards the memoization tables ([sources], [factories], [infos],
         [shard_layouts]): hedged member builds resolve factories from
         concurrent domains. Heavy work (index builds, thunk invocation)
         runs outside it — a racing double-build is resolved by
         first-install-wins. *)
  generation : int Atomic.t;
      (* bumped on every [invalidate] and [set_cache]: prepared engines
         capture the stamp and re-stage when it moved, so a prepared
         statement observes dataset updates and caching-mode flips *)
  mutable interposer : interposer option;
  mutable retry : Proteus_resilience.Policy.t;
      (* member-build retry budget; the default preserves the original
         "rebuild once from scratch" contract *)
  mutable hedge : Proteus_resilience.Hedge.t option;
      (* straggler hedging for member builds; [None] = off *)
  mutable breaker_cfg : Proteus_resilience.Breaker.config;
  breakers : (string, Proteus_resilience.Breaker.t) Hashtbl.t;
      (* per-member circuit state, living beside the digest cache and
         cleared with it on member re-registration *)
  slot_cols : (string * string, unit) Hashtbl.t;
      (* (dataset, path) pairs materialized straight from format-index
         spans at promotion time: cache hits on them are slot reads
         (guarded by [build_mu]; cleared on [invalidate]) *)
}

let create ?(cache = Cache_iface.disabled) catalog =
  {
    catalog;
    cache;
    sources = Hashtbl.create 16;
    factories = Hashtbl.create 16;
    infos = Hashtbl.create 16;
    shard_sets = Hashtbl.create 4;
    shard_layouts = Hashtbl.create 4;
    digests = Hashtbl.create 16;
    shard_mu = Mutex.create ();
    build_mu = Mutex.create ();
    generation = Atomic.make 0;
    interposer = None;
    retry = Proteus_resilience.Policy.default;
    hedge = None;
    breaker_cfg = Proteus_resilience.Breaker.default_config;
    breakers = Hashtbl.create 8;
    slot_cols = Hashtbl.create 8;
  }

let with_lock mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let catalog t = t.catalog
let cache t = t.cache
let generation t = Atomic.get t.generation

let set_cache t c =
  t.cache <- c;
  Atomic.incr t.generation

(* Cold-access statistics: cardinality plus min/max of numeric top-level
   fields, observed through the freshly built source — in a single pass
   that observes every numeric path per seek. *)
let collect_stats t (d : Dataset.t) (src : Source.t) =
  let stats = Catalog.stats t.catalog d.name in
  Stats.set_cardinality stats src.Source.count;
  let numeric_paths =
    match d.element with
    | Ptype.Record fields ->
      List.filter_map
        (fun (name, ty) ->
          match Ptype.unwrap_option ty with
          | Ptype.Int | Ptype.Float | Ptype.Date -> Some name
          | _ -> None)
        fields
    | _ -> []
  in
  let accessors =
    List.filter_map
      (fun path ->
        match src.Source.field path with
        | access -> Some (path, access)
        | exception Perror.Plan_error _ -> None)
      numeric_paths
  in
  if accessors <> [] then
    for i = 0 to src.Source.count - 1 do
      if i land 1023 = 0 then Fault.check_cancel ();
      src.Source.seek i;
      List.iter
        (fun (path, access) ->
          match access.Access.get_val () with
          | v -> Stats.observe stats path v
          | exception Perror.Type_error _ -> ()
          (* statistics are advisory: under a degraded error policy a
             corrupt field must not abort the query from the stats pass
             (the scan's own accounting owns error reporting) *)
          | exception Perror.Parse_error _
            when Fault.skipping () || Fault.null_filling () ->
            ())
        accessors
    done

(* Index-build failures name the dataset: the byte offset alone is useless
   to a user when a query touches several files. *)
let with_dataset_context name f =
  try f () with
  | Perror.Parse_error { what; pos; msg } ->
    raise (Perror.Parse_error { what = what ^ ":" ^ name; pos; msg })
  | Perror.Unsupported m -> Perror.unsupported "%s (dataset %s)" m name

(* The heavy per-dataset artifacts (parsed row pages, structural indexes)
   are built once; the returned thunk stamps out cheap source views — each
   a private cursor plus accessors over the shared read-only artifact, so
   parallel workers can scan the same dataset independently. *)
let build_factory t (d : Dataset.t) : unit -> Source.t =
  match d.format, d.location with
  | Dataset.Binary_row, Dataset.Rows page -> fun () -> Binary_plugin.of_rowpage page
  | Dataset.Binary_column, Dataset.Columns cols ->
    fun () -> Binary_plugin.of_columns ~element:d.element cols
  | Dataset.Binary_row, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let page =
      Proteus_storage.Rowpage.of_bytes (Dataset.schema d) (Bytes.of_string bytes)
    in
    fun () -> Binary_plugin.of_rowpage page
  | Dataset.Csv config, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = with_dataset_context d.name (fun () -> Csv_index.build config bytes) in
    let info =
      {
        size_bytes = Csv_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Csv_index.is_fixed_width index;
      }
    in
    with_lock t.build_mu (fun () -> Hashtbl.replace t.infos d.name info);
    Log.info (fun m ->
        m "built CSV index for %s: %d rows, %.1f%% of input" d.name
          (Csv_index.row_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes)));
    let schema = Dataset.schema d in
    fun () -> Csv_plugin.make ~config ~schema ~index ~src:bytes
  | Dataset.Json, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = with_dataset_context d.name (fun () -> Json_index.build bytes) in
    let info =
      {
        size_bytes = Json_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Json_index.is_fixed_schema index;
      }
    in
    with_lock t.build_mu (fun () -> Hashtbl.replace t.infos d.name info);
    Log.info (fun m ->
        m "built JSON index for %s: %d objects, %.1f%% of input%s" d.name
          (Json_index.object_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes))
          (if info.fixed_schema then " (fixed schema)" else ""));
    let element = d.element in
    fun () -> Json_plugin.make ~element ~index
  | (Dataset.Csv _ | Dataset.Json), (Dataset.Rows _ | Dataset.Columns _)
  | Dataset.Binary_row, Dataset.Columns _
  | Dataset.Binary_column, (Dataset.File _ | Dataset.Blob _ | Dataset.Rows _) ->
    Perror.plan_error "dataset %s: location does not match format %s" d.name
      (Dataset.format_name d.format)

(* --- concatenated shard views --------------------------------------------- *)

(* Merge per-member accessors for one path into one accessor dispatched on
   the concat cursor. Typed getters survive only when every member offers
   them (a missing one falls the whole path back to boxed dispatch, which
   is always available); batch fills survive likewise and route each run
   of the (ascending) selection vector to the member owning those rows.
   [~fills:false] is used for unnest element fields, whose indexes are not
   global row ids. Dictionary metadata never merges: codes are private to
   each member's cache column. *)
let merged_access ~fills ~cur ~locate ~(offsets : int array)
    (accs : Access.t array) : Access.t =
  let all proj =
    let xs = Array.map proj accs in
    if Array.for_all Option.is_some xs then Some (Array.map Option.get xs)
    else None
  in
  let lift proj = Option.map (fun fs () -> fs.(!cur) ()) (all proj) in
  let nullable = Array.exists (fun a -> a.Access.nullable) accs in
  let is_null =
    if Array.for_all (fun a -> a.Access.is_null = None) accs then None
    else
      let fs = Array.map (fun a -> a.Access.is_null) accs in
      Some (fun () -> match fs.(!cur) with Some f -> f () | None -> false)
  in
  let get_vals = Array.map (fun a -> a.Access.get_val) accs in
  let merge_fill proj =
    if not fills then None
    else
      match all proj with
      | None -> None
      | Some fs ->
        Some
          (fun base out ~sel ~n ->
            let i = ref 0 in
            while !i < n do
              let m = locate (base + sel.(!i)) in
              let mhi = offsets.(m + 1) in
              let j = ref (!i + 1) in
              while !j < n && base + sel.(!j) < mhi do
                incr j
              done;
              let cnt = !j - !i in
              (* sub-vector copies keep each member call inside its own row
                 range; out positions are sel values, so they are unmoved *)
              let sub =
                if !i = 0 && cnt = n then sel else Array.sub sel !i cnt
              in
              fs.(m) (base - offsets.(m)) out ~sel:sub ~n:cnt;
              i := !j
            done)
  in
  let base_ty = Ptype.unwrap_option accs.(0).Access.ty in
  {
    Access.ty = (if nullable then Ptype.Option base_ty else base_ty);
    nullable;
    get_int = lift (fun a -> a.Access.get_int);
    get_float = lift (fun a -> a.Access.get_float);
    get_bool = lift (fun a -> a.Access.get_bool);
    get_str = lift (fun a -> a.Access.get_str);
    is_null;
    get_val = (fun () -> get_vals.(!cur) ());
    fill_int = merge_fill (fun a -> a.Access.fill_int);
    fill_float = merge_fill (fun a -> a.Access.fill_float);
    fill_bool = merge_fill (fun a -> a.Access.fill_bool);
    fill_str = merge_fill (fun a -> a.Access.fill_str);
    dict = None;
  }

(* One [Source.t] over the concatenation of the member views, enumerating
   global rows [0, sum counts) in member order. Seeks hit the cached
   current member in O(1) (scans are overwhelmingly sequential) and fall
   back to binary search. *)
let concat_source ~element (views : Source.t array) : Source.t =
  let n = Array.length views in
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + views.(i).Source.count
  done;
  let total = offsets.(n) in
  (* largest m with offsets.(m) <= i: lands past empty members, whose
     adjacent offsets are equal *)
  let locate i =
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if offsets.(mid) <= i then lo := mid else hi := mid - 1
    done;
    !lo
  in
  let cur = ref 0 in
  let seek i =
    let m = !cur in
    if i >= offsets.(m) && i < offsets.(m + 1) then
      views.(m).Source.seek (i - offsets.(m))
    else begin
      let m = locate i in
      cur := m;
      views.(m).Source.seek (i - offsets.(m))
    end
  in
  let field path =
    merged_access ~fills:true ~cur ~locate ~offsets
      (Array.map (fun v -> v.Source.field path) views)
  in
  let whole =
    let fs = Array.map (fun v -> v.Source.whole) views in
    fun () -> fs.(!cur) ()
  in
  let validate =
    if Array.for_all (fun v -> v.Source.validate = None) views then None
    else
      let fs = Array.map (fun v -> v.Source.validate) views in
      Some (fun () -> match fs.(!cur) with Some f -> f () | None -> ())
  in
  let unnest path =
    let specs = Array.map (fun v -> v.Source.unnest path) views in
    if not (Array.for_all Option.is_some specs) then None
    else begin
      let specs = Array.map Option.get specs in
      Some
        {
          Source.u_elem_ty = specs.(0).Source.u_elem_ty;
          u_prepare =
            (fun parts -> Array.iter (fun s -> s.Source.u_prepare parts) specs);
          u_iter = (fun ~on_elem -> specs.(!cur).Source.u_iter ~on_elem);
          u_field =
            (fun name ->
              merged_access ~fills:false ~cur ~locate ~offsets
                (Array.map (fun s -> s.Source.u_field name) specs));
          u_value = (fun () -> specs.(!cur).Source.u_value ());
        }
    end
  in
  { Source.element; count = total; seek; field; whole; unnest; validate }

(* A degraded member reads as an empty shard: a rowpage-backed view keeps
   every accessor (typed getters included) so the merged accessors lose no
   capability. *)
let empty_view element =
  Binary_plugin.of_rowpage
    (Proteus_storage.Rowpage.of_records (Schema.of_type element) [])

(* The member breaker, created on first use under the digest lock. *)
let breaker t name =
  with_lock t.shard_mu (fun () ->
      match Hashtbl.find_opt t.breakers name with
      | Some b -> b
      | None ->
        let b = Proteus_resilience.Breaker.create ~config:t.breaker_cfg () in
        Hashtbl.replace t.breakers name b;
        b)

(* Resolution is memoized under [build_mu], but the heavy work — eager
   index builds in [build_factory], thunk invocations — runs outside it:
   a shard parent's thunk re-enters [factory] per member, and hedged
   builds must be able to race. A racing double-resolution keeps the
   first installed factory. *)
let rec factory t name =
  match with_lock t.build_mu (fun () -> Hashtbl.find_opt t.factories name) with
  | Some f -> f
  | None ->
    let shard_members =
      with_lock t.build_mu (fun () -> Hashtbl.find_opt t.shard_sets name)
    in
    let f =
      match shard_members with
      | Some members -> shard_factory t name members
      | None -> build_factory t (Catalog.find t.catalog name)
    in
    let f = match t.interposer with Some ip -> ip name f | None -> f in
    with_lock t.build_mu (fun () ->
        match Hashtbl.find_opt t.factories name with
        | Some existing -> existing
        | None ->
          Hashtbl.replace t.factories name f;
          f)

(* The parent factory of a shard set: each invocation stamps out fresh
   member views (cheap — heavy artifacts stay memoized per member) and
   concatenates them. Member builds go through {!build_member}: the
   per-member circuit breaker, the straggler hedge, and the configured
   retry budget (the default budget preserves the original "rebuild once
   from scratch" contract). Failures are never memoized (member factories
   install only on success), so a later [Fail_fast] query re-attempts the
   build. *)
and shard_factory t name members : unit -> Source.t =
  let element = (Catalog.find t.catalog name).Dataset.element in
  fun () ->
    let views = List.map (fun m -> build_member t ~element m) members in
    let varr = Array.of_list views in
    let layout =
      let off = ref 0 in
      Array.of_list
        (List.map2
           (fun m (v : Source.t) ->
             let sh = { sh_member = m; sh_offset = !off; sh_rows = v.Source.count } in
             off := !off + v.Source.count;
             sh)
           members views)
    in
    (* refresh on every build: counts track member updates and
       degrade/heal transitions, and a pruning layout must describe the
       very views the engine just got *)
    with_lock t.build_mu (fun () -> Hashtbl.replace t.shard_layouts name layout);
    concat_source ~element varr

(* One member view for the scatter, through the resilience ladder:

   1. the breaker: an open member is skipped immediately (degraded to an
      empty shard with one recorded skip under Skip_row/Null_fill, a
      fast failure under Fail_fast) instead of re-paying its failure;
   2. the hedge (when configured, and only under Fail_fast — degraded
      policies record per-row errors into shared cells, and a speculative
      duplicate would double-account them);
   3. the retry budget: recoverable build failures are re-attempted with
      backoff, invalidating the stale artifact before each retry.

   Budget-exhausted recoverable failures feed the breaker; any success
   closes it. *)
and build_member t ~element m =
  let module R = Proteus_resilience in
  let degrade e =
    if Fault.skipping () || Fault.null_filling () then begin
      Fault.record_skip ~source:m ~row:0 e;
      empty_view element
    end
    else raise e
  in
  let br = breaker t m in
  match R.Breaker.admit br with
  | R.Breaker.Reject ->
    R.Stats.add_breaker_open 1;
    degrade
      (Perror.Parse_error
         {
           what = "shard:" ^ m;
           pos = -1;
           msg = "member unavailable: circuit breaker open";
         })
  | R.Breaker.Proceed -> (
    let budgeted () =
      R.Policy.run t.retry ~retryable:Fault.recoverable
        ~on_retry:(fun ~attempt:_ _ ->
          R.Stats.add_retries 1;
          invalidate_artifacts t m)
        (fun _ -> factory t m ())
    in
    let build =
      match t.hedge with
      | Some h when Fault.policy () = Fault.Fail_fast ->
        fun () -> R.Hedge.run h ~key:m budgeted
      | _ -> budgeted
    in
    match build () with
    | v ->
      R.Breaker.success br;
      v
    | exception e when Fault.recoverable e ->
      R.Breaker.failure br;
      degrade e)

(* Invalidate the memoized artifacts of [name] (and stale parent state),
   leaving its breaker alone: the retry path calls this between attempts,
   and a breaker that reset on every retry could never accumulate the
   consecutive failures that open it. *)
and invalidate_artifacts t name =
  with_lock t.build_mu (fun () ->
      Hashtbl.remove t.sources name;
      Hashtbl.remove t.factories name;
      Hashtbl.remove t.infos name;
      Hashtbl.remove t.shard_layouts name;
      let stale_slots =
        Hashtbl.fold
          (fun (ds, p) () acc -> if String.equal ds name then (ds, p) :: acc else acc)
          t.slot_cols []
      in
      List.iter (Hashtbl.remove t.slot_cols) stale_slots;
      (* a member update stales its parents' concat views, layouts and
         digests *)
      Hashtbl.iter
        (fun parent members ->
          if List.mem name members then begin
            Hashtbl.remove t.sources parent;
            Hashtbl.remove t.factories parent;
            Hashtbl.remove t.shard_layouts parent
          end)
        t.shard_sets);
  Mutex.lock t.shard_mu;
  let prefix = name ^ "\x00" in
  let stale =
    Hashtbl.fold
      (fun k _ acc ->
        if String.length k >= String.length prefix
           && String.sub k 0 (String.length prefix) = prefix
        then k :: acc
        else acc)
      t.digests []
  in
  List.iter (Hashtbl.remove t.digests) stale;
  Mutex.unlock t.shard_mu;
  Atomic.incr t.generation

(* Full invalidation (re-registration, updates): artifacts plus the
   member's breaker — a re-registered member starts with a clean circuit,
   which is how a healed source comes back before its cooldown expires. *)
let invalidate t name =
  invalidate_artifacts t name;
  with_lock t.shard_mu (fun () -> Hashtbl.remove t.breakers name)

let source t name =
  match with_lock t.build_mu (fun () -> Hashtbl.find_opt t.sources name) with
  | Some s -> s
  | None ->
    let d = Catalog.find t.catalog name in
    let s = factory t name () in
    let s, fresh =
      with_lock t.build_mu (fun () ->
          match Hashtbl.find_opt t.sources name with
          | Some existing -> (existing, false)
          | None ->
            Hashtbl.replace t.sources name s;
            (s, true))
    in
    if fresh then collect_stats t d s;
    s

let fresh_source t name =
  (* first access still goes through [source] so index building and cold
     statistics happen exactly once *)
  ignore (source t name);
  factory t name ()

let index_info t name = Hashtbl.find_opt t.infos name

(* Swap in a replacement factory — the fault-injection harness wraps the
   real source with failing accessors this way. The shared source is
   replaced immediately (not lazily) so cold-statistics collection, which
   already happened over the genuine source, is not re-run over the
   injected one. The dataset must already be registered. *)
let install_factory t name f =
  let s = f () in
  with_lock t.build_mu (fun () ->
      Hashtbl.replace t.factories name f;
      Hashtbl.remove t.shard_layouts name;
      Hashtbl.replace t.sources name s)

(* --- resilience configuration ---------------------------------------------- *)

let set_interposer t ip =
  t.interposer <- ip;
  (* drop resolved factories so the (new) interposer wraps them on the
     next resolution; memoized sources and heavy artifacts survive *)
  with_lock t.build_mu (fun () -> Hashtbl.reset t.factories);
  Atomic.incr t.generation

let interposer t = t.interposer

let set_retry_policy t p = t.retry <- p
let retry_policy t = t.retry

let set_hedge t h = t.hedge <- h
let hedge t = t.hedge

let set_breaker_config t cfg =
  t.breaker_cfg <- cfg;
  (* existing breakers keep their old config; drop them so the next
     admission creates fresh ones under the new thresholds *)
  with_lock t.shard_mu (fun () -> Hashtbl.reset t.breakers)

let breaker_states t =
  with_lock t.shard_mu (fun () ->
      Hashtbl.fold
        (fun m b acc -> (m, Proteus_resilience.Breaker.state b) :: acc)
        t.breakers [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let breaker_blocked t name =
  match with_lock t.shard_mu (fun () -> Hashtbl.find_opt t.breakers name) with
  | None -> false
  | Some b -> Proteus_resilience.Breaker.blocking b

(* --- shard sets ------------------------------------------------------------ *)

let shard_members t name = Hashtbl.find_opt t.shard_sets name

let shard_parents t name =
  Hashtbl.fold
    (fun parent members acc -> if List.mem name members then parent :: acc else acc)
    t.shard_sets []

(* Register [name] as a shard set over already-registered [members]. The
   parent gets its own catalog entry (element = the members' common
   element; the location is a deliberately unresolvable blob so any path
   that tries to read the parent as one byte image fails loudly instead
   of silently reading nothing). Shard sets are append-only: immutable
   members plus [add_shard]. *)
let register_shard_set t ~name ~members =
  if members = [] then
    Perror.plan_error "shard set %s needs at least one member" name;
  let ds =
    List.map
      (fun m ->
        if String.equal m name then
          Perror.plan_error "shard set %s cannot contain itself" name;
        Catalog.find t.catalog m)
      members
  in
  let first = List.hd ds in
  List.iter
    (fun (d : Dataset.t) ->
      if d.element <> first.Dataset.element then
        Perror.plan_error
          "shard set %s: member %s has element type %a, expected %a" name
          d.name Ptype.pp d.element Ptype.pp first.Dataset.element)
    ds;
  Catalog.register t.catalog
    (Dataset.make ~name ~format:first.Dataset.format
       ~location:(Dataset.Blob (name ^ "\x00shards"))
       ~element:first.Dataset.element);
  Hashtbl.replace t.shard_sets name members;
  invalidate t name

let add_shard t ~name ~member =
  match shard_members t name with
  | None -> Perror.plan_error "%s is not a shard set" name
  | Some members ->
    let d = Catalog.find t.catalog member in
    let parent = Catalog.find t.catalog name in
    if d.Dataset.element <> parent.Dataset.element then
      Perror.plan_error "shard %s: element type %a does not match set %s"
        member Ptype.pp d.Dataset.element name;
    Hashtbl.replace t.shard_sets name (members @ [ member ]);
    invalidate t name

(* The shard layout the engine prunes against: present once the parent
   view has been built (building it on demand here keeps callers simple).
   Returns [None] for ordinary datasets. *)
let shards t name =
  if not (Hashtbl.mem t.shard_sets name) then None
  else begin
    (match with_lock t.build_mu (fun () -> Hashtbl.find_opt t.shard_layouts name)
     with
    | Some _ -> ()
    | None -> ignore (source t name));
    with_lock t.build_mu (fun () -> Hashtbl.find_opt t.shard_layouts name)
  end

(* Build the pruning digest for one (member, path): row count, non-null
   count, numeric min/max and a Bloom filter over canonical keys, in one
   pass over a private member view. Any failure (missing path, parse
   error, degraded member) yields [None] — pruning simply stands down for
   that shard — and is not memoized, so a healed member gets a digest on
   the next query. *)
let shard_digest t ~member ~path =
  let key = member ^ "\x00" ^ path in
  let cached =
    Mutex.lock t.shard_mu;
    let c = Hashtbl.find_opt t.digests key in
    Mutex.unlock t.shard_mu;
    c
  in
  match cached with
  | Some dg -> dg
  | None ->
    let dg =
      match factory t member () with
      | exception e when Fault.recoverable e -> None
      | exception Perror.Plan_error _ -> None
      | src -> (
        match src.Source.field path with
        | exception Perror.Plan_error _ -> None
        | access -> (
          let rows = src.Source.count in
          let bloom = Proteus_storage.Bloom.create rows in
          let nonnull = ref 0 in
          let mn = ref infinity and mx = ref neg_infinity in
          let all_numeric = ref true and keyed = ref true in
          let observe_num f key =
            incr nonnull;
            if f < !mn then mn := f;
            if f > !mx then mx := f;
            Proteus_storage.Bloom.add bloom key
          in
          try
            for i = 0 to rows - 1 do
              if i land 1023 = 0 then Fault.check_cancel ();
              src.Source.seek i;
              match access.Access.get_val () with
              | Value.Null -> ()
              | Value.Int k | Value.Date k ->
                observe_num (float_of_int k) (Proteus_storage.Bloom.key_int k)
              | Value.Float f ->
                (* OCaml's [compare] orders NaN below every float, so a data
                   NaN satisfies [col < c] for any c: fold it to -inf so
                   ordering tests can never prune a NaN-bearing shard. *)
                if Float.is_nan f then begin
                  incr nonnull;
                  mn := neg_infinity;
                  Proteus_storage.Bloom.add bloom (Proteus_storage.Bloom.key_float f)
                end
                else observe_num f (Proteus_storage.Bloom.key_float f)
              | Value.String s ->
                incr nonnull;
                all_numeric := false;
                Proteus_storage.Bloom.add bloom
                  (Proteus_storage.Bloom.key_string s)
              | _ ->
                incr nonnull;
                all_numeric := false;
                keyed := false
            done;
            Some
              {
                sd_rows = rows;
                sd_nonnull = !nonnull;
                sd_min = !mn;
                sd_max = !mx;
                sd_all_numeric = !all_numeric;
                sd_keyed = !keyed;
                sd_bloom = bloom;
              }
          with
          | e when Fault.recoverable e -> None
          | Perror.Type_error _ -> None))
    in
    if dg <> None then begin
      Mutex.lock t.shard_mu;
      Hashtbl.replace t.digests key dg;
      Mutex.unlock t.shard_mu
    end;
    dg

(* --- segmented cache fills ------------------------------------------------ *)

(* A fill session is the unit of install-on-commit cache materialization for
   one dataset scan. Workers (or the serial loop, or the batch driver) fill
   per-range {e segments} — private column builders keyed by their start row
   — and a successful run commits them in ascending start order with one
   [Array.blit] per segment ({!Proteus_storage.Column.Builder.concat}), so
   the installed columns are bit-identical to a serial fill at any domain
   count and batch size. A run that recorded errors, skipped rows, or died
   mid-scan releases every segment as quarantined: no partially-filled cache
   ever installs (DESIGN.md section 10 semantics, now on the morsel spine). *)
type fill_session = {
  fs_dataset : string;
  fs_bias : Proteus_storage.Memory.Arena.bias;
  fs_paths : (string * Ptype.t) list;  (* elected fill paths, in required order *)
  fs_cache : unit -> Cache_iface.t;
  fs_lock : Mutex.t;  (* guards fs_segs: one lock per segment open, not per row *)
  mutable fs_segs : (int * Proteus_storage.Column.Builder.t list) list;
  mutable fs_e0 : int;  (* Fault.errors_total at arm time *)
}

let session_arm s =
  Mutex.lock s.fs_lock;
  s.fs_segs <- [];
  s.fs_e0 <- Fault.errors_total ();
  Mutex.unlock s.fs_lock

(* Open one segment starting at row [start]: fresh builders (one per elected
   path, in [fs_paths] order), registered so commit/release can see them.
   Each range or batch is scanned by exactly one worker, so start keys are
   unique and ascending-sort reproduces the serial row order. *)
let session_open s ~start =
  let builders =
    List.map (fun (_, ty) -> Proteus_storage.Column.Builder.create ty) s.fs_paths
  in
  Mutex.lock s.fs_lock;
  s.fs_segs <- (start, builders) :: s.fs_segs;
  Mutex.unlock s.fs_lock;
  builders

let quarantine_all s =
  let cache = s.fs_cache () in
  List.iter
    (fun (path, _) ->
      cache.Cache_iface.quarantine ~id:(s.fs_dataset ^ "." ^ path))
    s.fs_paths

(* Abort path: the producing run raised (error policy abort, cancellation,
   budget) — drop every segment and account the fills as quarantined. *)
let session_release s =
  Mutex.lock s.fs_lock;
  s.fs_segs <- [];
  Mutex.unlock s.fs_lock;
  quarantine_all s

(* Commit: blit-assemble the segments in start order and install the columns
   — unless the run recorded any error since arming (skipped rows leave
   hole-y segments; OID-aligned field caches must never install those). *)
let session_commit s =
  Mutex.lock s.fs_lock;
  let segs = List.sort (fun (a, _) (b, _) -> compare (a : int) b) s.fs_segs in
  s.fs_segs <- [];
  Mutex.unlock s.fs_lock;
  if Fault.errors_total () <> s.fs_e0 then quarantine_all s
  else begin
    let open Proteus_storage.Column in
    let cache = s.fs_cache () in
    let rows =
      List.fold_left
        (fun acc (_, bs) ->
          acc + (match bs with b :: _ -> Builder.length b | [] -> 0))
        0 segs
    in
    List.iteri
      (fun i (path, ty) ->
        let col = Builder.concat ty (List.map (fun (_, bs) -> List.nth bs i) segs) in
        cache.Cache_iface.store_field ~dataset:s.fs_dataset ~path ~bias:s.fs_bias col)
      s.fs_paths;
    cache.Cache_iface.note_fill ~dataset:s.fs_dataset ~segments:(List.length segs)
      ~rows
  end

let session_dataset s = s.fs_dataset

type scan = {
  sc_source : Source.t;
  sc_count : int;
  sc_run : on_tuple:(unit -> unit) -> unit;
  sc_run_range : lo:int -> hi:int -> on_tuple:(unit -> unit) -> unit;
  sc_run_batches : batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_run_range_batches :
    lo:int -> hi:int -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_fills : bool;
  sc_fill : fill_session option;
  sc_fill_sel : (base:int -> sel:int array -> n:int -> unit) option;
  sc_cache_hits : string list;
  sc_probe : (unit -> unit) option;
  sc_dataset : string;
}

(* A cache fill: evaluates one path per row into a column builder, using the
   typed fast path when the accessor offers one. *)
let make_fill (access : Access.t) builder : unit -> unit =
  let open Proteus_storage.Column in
  match access.Access.is_null, access.Access.get_int, access.Access.get_float,
        access.Access.get_bool, access.Access.get_str with
  | None, Some get, _, _, _ -> fun () -> Builder.add_int builder (get ())
  | None, _, Some get, _, _ -> fun () -> Builder.add_float builder (get ())
  | None, _, _, Some get, _ -> fun () -> Builder.add_bool builder (get ())
  | None, _, _, _, Some get -> fun () -> Builder.add_string builder (get ())
  | _ -> fun () -> Builder.add_value builder (access.Access.get_val ())

(* Adaptive storage 2.0: promotion-time materialization of a typed column
   straight from the dataset's format index. A JSON path that crossed the
   promotion threshold is read once through its slot accessors (the
   Json_index entry spans, resolved at accessor-construction time) into a
   cache column, so every later promoted read serves binary values instead
   of re-running numparse/span decoding per tuple. Fired from the manager's
   promotion hook (outside its lock); recoverable failures abandon the
   materialization without recording faults — the hook may run mid-query
   and must never perturb that query's error accounting. *)
let materialize_field t ~dataset ~path =
  match Catalog.find_opt t.catalog dataset with
  | Some d when d.Dataset.format = Dataset.Json -> (
    try
      let ty = Source.field_type d.element path in
      let already =
        match t.cache.Cache_iface.lookup_field ~dataset ~path with
        | Some _ -> true
        | None -> false
      in
      if
        (not already)
        && Ptype.is_primitive (Ptype.unwrap_option ty)
        && t.cache.Cache_iface.should_cache_field ~dataset ~path ~ty
      then begin
        let src = fresh_source t dataset in
        let access = src.Source.field path in
        let builder = Proteus_storage.Column.Builder.create ty in
        let fill = make_fill access builder in
        for i = 0 to src.Source.count - 1 do
          if i land 1023 = 0 then Fault.check_cancel ();
          src.Source.seek i;
          fill ()
        done;
        let col = Proteus_storage.Column.Builder.finish builder in
        t.cache.Cache_iface.store_field ~dataset ~path
          ~bias:(Dataset.bias d.Dataset.format) col;
        (* confirm the install (the arena may refuse oversized blocks)
           before claiming slot-read routing for the path *)
        match t.cache.Cache_iface.lookup_field ~dataset ~path with
        | Some _ ->
          with_lock t.build_mu (fun () ->
              Hashtbl.replace t.slot_cols (dataset, path) ());
          t.cache.Cache_iface.note_slot_column ~dataset ~path
        | None -> ()
      end
    with e when Fault.recoverable e ->
      Log.debug (fun m ->
          m "slot-column materialization of %s.%s abandoned: %s" dataset path
            (Printexc.to_string e)))
  | Some _ | None -> ()

(* Is the cache hit for [(dataset, path)] served by a pre-parsed slot
   column? Consulted once per scan construction for observability. *)
let slot_column t ~dataset ~path =
  with_lock t.build_mu (fun () -> Hashtbl.mem t.slot_cols (dataset, path))

let scan_of t ~dataset ~required ~whole ~(raw : Source.t) ~fill ~session =
  let d = Catalog.find t.catalog dataset in
  let oid = ref 0 in
  let bias = Dataset.bias d.format in
  (* Null_fill wraps each raw accessor so a recoverable parse failure reads
     as [Value.Null] (accounted per field). The wrapper is boxed-only, so
     downstream batch kernels fall back to the scalar-within-selection
     path automatically — faults never corrupt a vectorized lane. *)
  let null_wrap (a : Access.t) =
    Access.boxed
      (Ptype.Option (Ptype.unwrap_option a.Access.ty))
      (fun () ->
        try a.Access.get_val ()
        with e when Fault.recoverable e ->
          Fault.record_null ~source:dataset ~row:!oid e;
          Value.Null)
  in
  (* Route each required path: cache hit -> column accessor; miss elected by
     the policy -> raw accessor + fill into a fresh cache column. Under
     Null_fill no fills are elected: a column with substituted nulls must
     never be installed as if it were the field's true contents. *)
  let routed = Hashtbl.create 8 in
  let to_fill = ref [] in
  let hits = ref [] in
  List.iter
    (fun path ->
      match t.cache.Cache_iface.lookup_field ~dataset ~path with
      | Some col ->
        let ty = Source.field_type d.element path in
        Hashtbl.replace routed path (Access.of_column col ~cur:oid ty);
        (* slot-read accounting: rows this scan serves from a pre-parsed
           slot column instead of span decoding (ticked at construction —
           the read loop itself stays untouched) *)
        if slot_column t ~dataset ~path then
          Pstats.add_slot_reads raw.Source.count;
        hits := path :: !hits
      | None ->
        if fill && not (Fault.null_filling ()) then
          let ty = try Some (Source.field_type d.element path) with Perror.Plan_error _ -> None in
          (match ty with
          | Some ty
            when Ptype.is_primitive (Ptype.unwrap_option ty)
                 && t.cache.Cache_iface.should_cache_field ~dataset ~path ~ty ->
            to_fill := (path, ty, raw.Source.field path) :: !to_fill
          | _ -> ()))
    required;
  let field path =
    match Hashtbl.find_opt routed path with
    | Some a -> a
    | None ->
      let a = raw.Source.field path in
      if Fault.null_filling () then null_wrap a else a
  in
  let seek i =
    raw.Source.seek i;
    oid := i
  in
  let sc_source = { raw with Source.field; seek } in
  (* Skip_row is probe-then-commit: before a row enters the pipeline, read
     every fallible accessor the query needs at that row (cache-routed paths
     are infallible and skipped) plus the format's structural validator.
     A row that probes clean cannot fail downstream, so operators, fills and
     aggregates only ever see the valid subset — which is what makes skip
     runs bit-identical to a clean run over that subset. *)
  let probe =
    let parts =
      List.filter_map
        (fun path ->
          if Hashtbl.mem routed path then None
          else
            match raw.Source.field path with
            | a -> Some (fun () -> ignore (a.Access.get_val ()))
            | exception Perror.Plan_error _ -> None)
        required
    in
    let parts =
      if whole then parts @ [ (fun () -> ignore (raw.Source.whole ())) ] else parts
    in
    let parts =
      match raw.Source.validate with Some v -> v :: parts | None -> parts
    in
    match parts with
    | [] -> None
    | parts -> Some (fun () -> List.iter (fun f -> f ()) parts)
  in
  (* Policy-aware tuple loop: checks the cancellation token every 1024 rows
     and, under Skip_row, drops rows whose probe fails. *)
  let policy_run ~lo ~hi ~on_tuple =
    match probe with
    | Some p when Fault.skipping () ->
      for i = lo to hi - 1 do
        if i land 1023 = 0 then Fault.check_cancel ();
        seek i;
        match p () with
        | () -> on_tuple ()
        | exception e when Fault.recoverable e ->
          Fault.record_skip ~source:dataset ~row:i e
      done
    | _ ->
      for i = lo to hi - 1 do
        if i land 1023 = 0 then Fault.check_cancel ();
        seek i;
        on_tuple ()
      done
  in
  (* The fill specification for this scan object: (path, ty, raw accessor)
     in required order, plus the session the segments land in. A filling
     [scan] owns a private session (and runs its own arm/commit lifecycle in
     [sc_run]); a [scan_view] given a shared session fills that session's
     elected paths through its {e own} raw accessors while the engine owns
     the lifecycle around the whole fleet. *)
  let fills_spec, sess, owns_session =
    match session with
    | Some s ->
      ( List.map
          (fun (path, ty) -> (path, ty, raw.Source.field path))
          s.fs_paths,
        Some s, false )
    | None -> (
      match List.rev !to_fill with
      | [] -> ([], None, false)
      | spec ->
        let s =
          {
            fs_dataset = dataset;
            fs_bias = bias;
            fs_paths = List.map (fun (p, ty, _) -> (p, ty)) spec;
            fs_cache = (fun () -> t.cache);
            fs_lock = Mutex.create ();
            fs_segs = [];
            fs_e0 = 0;
          }
        in
        (spec, Some s, true))
  in
  (* Tuple lane: fill one segment covering [lo, hi) while scanning it. Fills
     run after the Skip_row probe admits the row, so a skip run's segments
     are compacted (and the error delta quarantines them at commit). *)
  let run_range_filling s ~lo ~hi ~on_tuple =
    let builders = session_open s ~start:lo in
    let fills = List.map2 (fun (_, _, access) b -> make_fill access b) fills_spec builders in
    policy_run ~lo ~hi ~on_tuple:(fun () ->
        List.iter (fun f -> f ()) fills;
        on_tuple ())
  in
  let sc_run ~on_tuple =
    match sess with
    | Some s when owns_session ->
      (* serial filling scan: one segment spanning the whole dataset, same
         arm/commit/release lifecycle the engine runs around a fleet *)
      session_arm s;
      (try run_range_filling s ~lo:0 ~hi:raw.Source.count ~on_tuple
       with e ->
         session_release s;
         raise e);
      session_commit s
    | _ ->
      if Fault.active () then policy_run ~lo:0 ~hi:raw.Source.count ~on_tuple
      else Source.run sc_source ~on_tuple
  in
  let sc_run_range ~lo ~hi ~on_tuple =
    match sess with
    | Some s when not owns_session ->
      (* per-worker morsel of a parallel cold run: segment keyed by [lo] *)
      run_range_filling s ~lo ~hi ~on_tuple
    | _ ->
      if Fault.active () then policy_run ~lo ~hi ~on_tuple
      else Source.run_range sc_source ~lo ~hi ~on_tuple
  in
  (* Batch lanes never fill inline: the batch driver fills through
     [sc_fill_sel] on the probe-surviving selection (before query filters
     narrow it), one segment per batch, so cache columns still come out
     identical to the tuple lane's at every batch size. *)
  let sc_run_batches ~batch ~on_batch =
    Source.run_batches sc_source ~batch ~on_batch
  in
  let sc_run_range_batches ~lo ~hi ~batch ~on_batch =
    Source.run_range_batches sc_source ~lo ~hi ~batch ~on_batch
  in
  let sc_fill_sel =
    match sess with
    | None -> None
    | Some s ->
      (* Per-path segment fillers. Vector-capable accessors (non-nullable
         paths with a native plug-in fill) gather through a scratch array —
         the plug-in reads rows by OID with no cursor churn — and append the
         gathered prefix; the rest seek per selected row. *)
      let mk_filler (_, _, (access : Access.t)) =
        let module B = Proteus_storage.Column.Builder in
        match
          ( access.Access.fill_int, access.Access.fill_float,
            access.Access.fill_bool, access.Access.fill_str )
        with
        | Some f, _, _, _ ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) 0;
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_int b out.(sel.(i))
            done
        | _, Some f, _, _ ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) 0.;
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_float b out.(sel.(i))
            done
        | _, _, Some f, _ ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) false;
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_bool b out.(sel.(i))
            done
        | _, _, _, Some f ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) "";
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_string b out.(sel.(i))
            done
        | None, None, None, None ->
          fun b ~base ~sel ~n ->
            let fill = make_fill access b in
            for i = 0 to n - 1 do
              seek (base + sel.(i));
              fill ()
            done
      in
      let fillers = List.map mk_filler fills_spec in
      Some
        (fun ~base ~sel ~n ->
          if n > 0 then begin
            let builders = session_open s ~start:base in
            List.iter2 (fun f b -> f b ~base ~sel ~n) fillers builders
          end)
  in
  {
    sc_source;
    sc_count = raw.Source.count;
    sc_run;
    sc_run_range;
    sc_run_batches;
    sc_run_range_batches;
    sc_fills = fills_spec <> [];
    sc_fill = sess;
    sc_fill_sel;
    sc_cache_hits = List.rev !hits;
    sc_probe = probe;
    sc_dataset = dataset;
  }

let scan ?(whole = false) t ~dataset ~required =
  (* every compiled engine owns a private cursor over the shared artifacts
     (index, parsed pages): concurrent sessions can then run serial engines
     over the same dataset without racing on seek state *)
  scan_of t ~dataset ~required ~whole ~raw:(fresh_source t dataset) ~fill:true
    ~session:None

let scan_view ?(whole = false) ?session t ~dataset ~required =
  scan_of t ~dataset ~required ~whole ~raw:(fresh_source t dataset) ~fill:false
    ~session
