open Proteus_model
open Proteus_catalog
module Csv_index = Proteus_format.Csv_index
module Json_index = Proteus_format.Json_index

let src_log = Logs.Src.create "proteus.plugin" ~doc:"Proteus input plug-ins"

module Log = (val Logs.src_log src_log : Logs.LOG)

type index_info = {
  size_bytes : int;
  input_bytes : int;
  build_seconds : float;
  fixed_schema : bool;
}

type t = {
  catalog : Catalog.t;
  mutable cache : Cache_iface.t;
  sources : (string, Source.t) Hashtbl.t;
  factories : (string, unit -> Source.t) Hashtbl.t;
  infos : (string, index_info) Hashtbl.t;
  generation : int Atomic.t;
      (* bumped on every [invalidate] and [set_cache]: prepared engines
         capture the stamp and re-stage when it moved, so a prepared
         statement observes dataset updates and caching-mode flips *)
}

let create ?(cache = Cache_iface.disabled) catalog =
  {
    catalog;
    cache;
    sources = Hashtbl.create 16;
    factories = Hashtbl.create 16;
    infos = Hashtbl.create 16;
    generation = Atomic.make 0;
  }

let catalog t = t.catalog
let cache t = t.cache
let generation t = Atomic.get t.generation

let set_cache t c =
  t.cache <- c;
  Atomic.incr t.generation

(* Cold-access statistics: cardinality plus min/max of numeric top-level
   fields, observed through the freshly built source — in a single pass
   that observes every numeric path per seek. *)
let collect_stats t (d : Dataset.t) (src : Source.t) =
  let stats = Catalog.stats t.catalog d.name in
  Stats.set_cardinality stats src.Source.count;
  let numeric_paths =
    match d.element with
    | Ptype.Record fields ->
      List.filter_map
        (fun (name, ty) ->
          match Ptype.unwrap_option ty with
          | Ptype.Int | Ptype.Float | Ptype.Date -> Some name
          | _ -> None)
        fields
    | _ -> []
  in
  let accessors =
    List.filter_map
      (fun path ->
        match src.Source.field path with
        | access -> Some (path, access)
        | exception Perror.Plan_error _ -> None)
      numeric_paths
  in
  if accessors <> [] then
    for i = 0 to src.Source.count - 1 do
      if i land 1023 = 0 then Fault.check_cancel ();
      src.Source.seek i;
      List.iter
        (fun (path, access) ->
          match access.Access.get_val () with
          | v -> Stats.observe stats path v
          | exception Perror.Type_error _ -> ()
          (* statistics are advisory: under a degraded error policy a
             corrupt field must not abort the query from the stats pass
             (the scan's own accounting owns error reporting) *)
          | exception Perror.Parse_error _
            when Fault.skipping () || Fault.null_filling () ->
            ())
        accessors
    done

(* Index-build failures name the dataset: the byte offset alone is useless
   to a user when a query touches several files. *)
let with_dataset_context name f =
  try f () with
  | Perror.Parse_error { what; pos; msg } ->
    raise (Perror.Parse_error { what = what ^ ":" ^ name; pos; msg })
  | Perror.Unsupported m -> Perror.unsupported "%s (dataset %s)" m name

(* The heavy per-dataset artifacts (parsed row pages, structural indexes)
   are built once; the returned thunk stamps out cheap source views — each
   a private cursor plus accessors over the shared read-only artifact, so
   parallel workers can scan the same dataset independently. *)
let build_factory t (d : Dataset.t) : unit -> Source.t =
  match d.format, d.location with
  | Dataset.Binary_row, Dataset.Rows page -> fun () -> Binary_plugin.of_rowpage page
  | Dataset.Binary_column, Dataset.Columns cols ->
    fun () -> Binary_plugin.of_columns ~element:d.element cols
  | Dataset.Binary_row, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let page =
      Proteus_storage.Rowpage.of_bytes (Dataset.schema d) (Bytes.of_string bytes)
    in
    fun () -> Binary_plugin.of_rowpage page
  | Dataset.Csv config, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = with_dataset_context d.name (fun () -> Csv_index.build config bytes) in
    let info =
      {
        size_bytes = Csv_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Csv_index.is_fixed_width index;
      }
    in
    Hashtbl.replace t.infos d.name info;
    Log.info (fun m ->
        m "built CSV index for %s: %d rows, %.1f%% of input" d.name
          (Csv_index.row_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes)));
    let schema = Dataset.schema d in
    fun () -> Csv_plugin.make ~config ~schema ~index ~src:bytes
  | Dataset.Json, (Dataset.File _ | Dataset.Blob _) ->
    let bytes = Catalog.contents t.catalog d in
    let t0 = Unix.gettimeofday () in
    let index = with_dataset_context d.name (fun () -> Json_index.build bytes) in
    let info =
      {
        size_bytes = Json_index.byte_size index;
        input_bytes = String.length bytes;
        build_seconds = Unix.gettimeofday () -. t0;
        fixed_schema = Json_index.is_fixed_schema index;
      }
    in
    Hashtbl.replace t.infos d.name info;
    Log.info (fun m ->
        m "built JSON index for %s: %d objects, %.1f%% of input%s" d.name
          (Json_index.object_count index)
          (100. *. float_of_int info.size_bytes /. float_of_int (max 1 info.input_bytes))
          (if info.fixed_schema then " (fixed schema)" else ""));
    let element = d.element in
    fun () -> Json_plugin.make ~element ~index
  | (Dataset.Csv _ | Dataset.Json), (Dataset.Rows _ | Dataset.Columns _)
  | Dataset.Binary_row, Dataset.Columns _
  | Dataset.Binary_column, (Dataset.File _ | Dataset.Blob _ | Dataset.Rows _) ->
    Perror.plan_error "dataset %s: location does not match format %s" d.name
      (Dataset.format_name d.format)

let factory t name =
  match Hashtbl.find_opt t.factories name with
  | Some f -> f
  | None ->
    let d = Catalog.find t.catalog name in
    let f = build_factory t d in
    Hashtbl.replace t.factories name f;
    f

let source t name =
  match Hashtbl.find_opt t.sources name with
  | Some s -> s
  | None ->
    let d = Catalog.find t.catalog name in
    let s = factory t name () in
    Hashtbl.replace t.sources name s;
    collect_stats t d s;
    s

let fresh_source t name =
  (* first access still goes through [source] so index building and cold
     statistics happen exactly once *)
  ignore (source t name);
  factory t name ()

let index_info t name = Hashtbl.find_opt t.infos name

(* Swap in a replacement factory — the fault-injection harness wraps the
   real source with failing accessors this way. The shared source is
   replaced immediately (not lazily) so cold-statistics collection, which
   already happened over the genuine source, is not re-run over the
   injected one. The dataset must already be registered. *)
let install_factory t name f =
  Hashtbl.replace t.factories name f;
  Hashtbl.replace t.sources name (f ())

let invalidate t name =
  Hashtbl.remove t.sources name;
  Hashtbl.remove t.factories name;
  Hashtbl.remove t.infos name;
  Atomic.incr t.generation

(* --- segmented cache fills ------------------------------------------------ *)

(* A fill session is the unit of install-on-commit cache materialization for
   one dataset scan. Workers (or the serial loop, or the batch driver) fill
   per-range {e segments} — private column builders keyed by their start row
   — and a successful run commits them in ascending start order with one
   [Array.blit] per segment ({!Proteus_storage.Column.Builder.concat}), so
   the installed columns are bit-identical to a serial fill at any domain
   count and batch size. A run that recorded errors, skipped rows, or died
   mid-scan releases every segment as quarantined: no partially-filled cache
   ever installs (DESIGN.md section 10 semantics, now on the morsel spine). *)
type fill_session = {
  fs_dataset : string;
  fs_bias : Proteus_storage.Memory.Arena.bias;
  fs_paths : (string * Ptype.t) list;  (* elected fill paths, in required order *)
  fs_cache : unit -> Cache_iface.t;
  fs_lock : Mutex.t;  (* guards fs_segs: one lock per segment open, not per row *)
  mutable fs_segs : (int * Proteus_storage.Column.Builder.t list) list;
  mutable fs_e0 : int;  (* Fault.errors_total at arm time *)
}

let session_arm s =
  Mutex.lock s.fs_lock;
  s.fs_segs <- [];
  s.fs_e0 <- Fault.errors_total ();
  Mutex.unlock s.fs_lock

(* Open one segment starting at row [start]: fresh builders (one per elected
   path, in [fs_paths] order), registered so commit/release can see them.
   Each range or batch is scanned by exactly one worker, so start keys are
   unique and ascending-sort reproduces the serial row order. *)
let session_open s ~start =
  let builders =
    List.map (fun (_, ty) -> Proteus_storage.Column.Builder.create ty) s.fs_paths
  in
  Mutex.lock s.fs_lock;
  s.fs_segs <- (start, builders) :: s.fs_segs;
  Mutex.unlock s.fs_lock;
  builders

let quarantine_all s =
  let cache = s.fs_cache () in
  List.iter
    (fun (path, _) ->
      cache.Cache_iface.quarantine ~id:(s.fs_dataset ^ "." ^ path))
    s.fs_paths

(* Abort path: the producing run raised (error policy abort, cancellation,
   budget) — drop every segment and account the fills as quarantined. *)
let session_release s =
  Mutex.lock s.fs_lock;
  s.fs_segs <- [];
  Mutex.unlock s.fs_lock;
  quarantine_all s

(* Commit: blit-assemble the segments in start order and install the columns
   — unless the run recorded any error since arming (skipped rows leave
   hole-y segments; OID-aligned field caches must never install those). *)
let session_commit s =
  Mutex.lock s.fs_lock;
  let segs = List.sort (fun (a, _) (b, _) -> compare (a : int) b) s.fs_segs in
  s.fs_segs <- [];
  Mutex.unlock s.fs_lock;
  if Fault.errors_total () <> s.fs_e0 then quarantine_all s
  else begin
    let open Proteus_storage.Column in
    let cache = s.fs_cache () in
    let rows =
      List.fold_left
        (fun acc (_, bs) ->
          acc + (match bs with b :: _ -> Builder.length b | [] -> 0))
        0 segs
    in
    List.iteri
      (fun i (path, ty) ->
        let col = Builder.concat ty (List.map (fun (_, bs) -> List.nth bs i) segs) in
        cache.Cache_iface.store_field ~dataset:s.fs_dataset ~path ~bias:s.fs_bias col)
      s.fs_paths;
    cache.Cache_iface.note_fill ~dataset:s.fs_dataset ~segments:(List.length segs)
      ~rows
  end

let session_dataset s = s.fs_dataset

type scan = {
  sc_source : Source.t;
  sc_count : int;
  sc_run : on_tuple:(unit -> unit) -> unit;
  sc_run_range : lo:int -> hi:int -> on_tuple:(unit -> unit) -> unit;
  sc_run_batches : batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_run_range_batches :
    lo:int -> hi:int -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  sc_fills : bool;
  sc_fill : fill_session option;
  sc_fill_sel : (base:int -> sel:int array -> n:int -> unit) option;
  sc_cache_hits : string list;
  sc_probe : (unit -> unit) option;
  sc_dataset : string;
}

(* A cache fill: evaluates one path per row into a column builder, using the
   typed fast path when the accessor offers one. *)
let make_fill (access : Access.t) builder : unit -> unit =
  let open Proteus_storage.Column in
  match access.Access.is_null, access.Access.get_int, access.Access.get_float,
        access.Access.get_bool, access.Access.get_str with
  | None, Some get, _, _, _ -> fun () -> Builder.add_int builder (get ())
  | None, _, Some get, _, _ -> fun () -> Builder.add_float builder (get ())
  | None, _, _, Some get, _ -> fun () -> Builder.add_bool builder (get ())
  | None, _, _, _, Some get -> fun () -> Builder.add_string builder (get ())
  | _ -> fun () -> Builder.add_value builder (access.Access.get_val ())

let scan_of t ~dataset ~required ~whole ~(raw : Source.t) ~fill ~session =
  let d = Catalog.find t.catalog dataset in
  let oid = ref 0 in
  let bias = Dataset.bias d.format in
  (* Null_fill wraps each raw accessor so a recoverable parse failure reads
     as [Value.Null] (accounted per field). The wrapper is boxed-only, so
     downstream batch kernels fall back to the scalar-within-selection
     path automatically — faults never corrupt a vectorized lane. *)
  let null_wrap (a : Access.t) =
    Access.boxed
      (Ptype.Option (Ptype.unwrap_option a.Access.ty))
      (fun () ->
        try a.Access.get_val ()
        with e when Fault.recoverable e ->
          Fault.record_null ~source:dataset ~row:!oid e;
          Value.Null)
  in
  (* Route each required path: cache hit -> column accessor; miss elected by
     the policy -> raw accessor + fill into a fresh cache column. Under
     Null_fill no fills are elected: a column with substituted nulls must
     never be installed as if it were the field's true contents. *)
  let routed = Hashtbl.create 8 in
  let to_fill = ref [] in
  let hits = ref [] in
  List.iter
    (fun path ->
      match t.cache.Cache_iface.lookup_field ~dataset ~path with
      | Some col ->
        let ty = Source.field_type d.element path in
        Hashtbl.replace routed path (Access.of_column col ~cur:oid ty);
        hits := path :: !hits
      | None ->
        if fill && not (Fault.null_filling ()) then
          let ty = try Some (Source.field_type d.element path) with Perror.Plan_error _ -> None in
          (match ty with
          | Some ty
            when Ptype.is_primitive (Ptype.unwrap_option ty)
                 && t.cache.Cache_iface.should_cache_field ~dataset ~path ~ty ->
            to_fill := (path, ty, raw.Source.field path) :: !to_fill
          | _ -> ()))
    required;
  let field path =
    match Hashtbl.find_opt routed path with
    | Some a -> a
    | None ->
      let a = raw.Source.field path in
      if Fault.null_filling () then null_wrap a else a
  in
  let seek i =
    raw.Source.seek i;
    oid := i
  in
  let sc_source = { raw with Source.field; seek } in
  (* Skip_row is probe-then-commit: before a row enters the pipeline, read
     every fallible accessor the query needs at that row (cache-routed paths
     are infallible and skipped) plus the format's structural validator.
     A row that probes clean cannot fail downstream, so operators, fills and
     aggregates only ever see the valid subset — which is what makes skip
     runs bit-identical to a clean run over that subset. *)
  let probe =
    let parts =
      List.filter_map
        (fun path ->
          if Hashtbl.mem routed path then None
          else
            match raw.Source.field path with
            | a -> Some (fun () -> ignore (a.Access.get_val ()))
            | exception Perror.Plan_error _ -> None)
        required
    in
    let parts =
      if whole then parts @ [ (fun () -> ignore (raw.Source.whole ())) ] else parts
    in
    let parts =
      match raw.Source.validate with Some v -> v :: parts | None -> parts
    in
    match parts with
    | [] -> None
    | parts -> Some (fun () -> List.iter (fun f -> f ()) parts)
  in
  (* Policy-aware tuple loop: checks the cancellation token every 1024 rows
     and, under Skip_row, drops rows whose probe fails. *)
  let policy_run ~lo ~hi ~on_tuple =
    match probe with
    | Some p when Fault.skipping () ->
      for i = lo to hi - 1 do
        if i land 1023 = 0 then Fault.check_cancel ();
        seek i;
        match p () with
        | () -> on_tuple ()
        | exception e when Fault.recoverable e ->
          Fault.record_skip ~source:dataset ~row:i e
      done
    | _ ->
      for i = lo to hi - 1 do
        if i land 1023 = 0 then Fault.check_cancel ();
        seek i;
        on_tuple ()
      done
  in
  (* The fill specification for this scan object: (path, ty, raw accessor)
     in required order, plus the session the segments land in. A filling
     [scan] owns a private session (and runs its own arm/commit lifecycle in
     [sc_run]); a [scan_view] given a shared session fills that session's
     elected paths through its {e own} raw accessors while the engine owns
     the lifecycle around the whole fleet. *)
  let fills_spec, sess, owns_session =
    match session with
    | Some s ->
      ( List.map
          (fun (path, ty) -> (path, ty, raw.Source.field path))
          s.fs_paths,
        Some s, false )
    | None -> (
      match List.rev !to_fill with
      | [] -> ([], None, false)
      | spec ->
        let s =
          {
            fs_dataset = dataset;
            fs_bias = bias;
            fs_paths = List.map (fun (p, ty, _) -> (p, ty)) spec;
            fs_cache = (fun () -> t.cache);
            fs_lock = Mutex.create ();
            fs_segs = [];
            fs_e0 = 0;
          }
        in
        (spec, Some s, true))
  in
  (* Tuple lane: fill one segment covering [lo, hi) while scanning it. Fills
     run after the Skip_row probe admits the row, so a skip run's segments
     are compacted (and the error delta quarantines them at commit). *)
  let run_range_filling s ~lo ~hi ~on_tuple =
    let builders = session_open s ~start:lo in
    let fills = List.map2 (fun (_, _, access) b -> make_fill access b) fills_spec builders in
    policy_run ~lo ~hi ~on_tuple:(fun () ->
        List.iter (fun f -> f ()) fills;
        on_tuple ())
  in
  let sc_run ~on_tuple =
    match sess with
    | Some s when owns_session ->
      (* serial filling scan: one segment spanning the whole dataset, same
         arm/commit/release lifecycle the engine runs around a fleet *)
      session_arm s;
      (try run_range_filling s ~lo:0 ~hi:raw.Source.count ~on_tuple
       with e ->
         session_release s;
         raise e);
      session_commit s
    | _ ->
      if Fault.active () then policy_run ~lo:0 ~hi:raw.Source.count ~on_tuple
      else Source.run sc_source ~on_tuple
  in
  let sc_run_range ~lo ~hi ~on_tuple =
    match sess with
    | Some s when not owns_session ->
      (* per-worker morsel of a parallel cold run: segment keyed by [lo] *)
      run_range_filling s ~lo ~hi ~on_tuple
    | _ ->
      if Fault.active () then policy_run ~lo ~hi ~on_tuple
      else Source.run_range sc_source ~lo ~hi ~on_tuple
  in
  (* Batch lanes never fill inline: the batch driver fills through
     [sc_fill_sel] on the probe-surviving selection (before query filters
     narrow it), one segment per batch, so cache columns still come out
     identical to the tuple lane's at every batch size. *)
  let sc_run_batches ~batch ~on_batch =
    Source.run_batches sc_source ~batch ~on_batch
  in
  let sc_run_range_batches ~lo ~hi ~batch ~on_batch =
    Source.run_range_batches sc_source ~lo ~hi ~batch ~on_batch
  in
  let sc_fill_sel =
    match sess with
    | None -> None
    | Some s ->
      (* Per-path segment fillers. Vector-capable accessors (non-nullable
         paths with a native plug-in fill) gather through a scratch array —
         the plug-in reads rows by OID with no cursor churn — and append the
         gathered prefix; the rest seek per selected row. *)
      let mk_filler (_, _, (access : Access.t)) =
        let module B = Proteus_storage.Column.Builder in
        match
          ( access.Access.fill_int, access.Access.fill_float,
            access.Access.fill_bool, access.Access.fill_str )
        with
        | Some f, _, _, _ ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) 0;
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_int b out.(sel.(i))
            done
        | _, Some f, _, _ ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) 0.;
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_float b out.(sel.(i))
            done
        | _, _, Some f, _ ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) false;
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_bool b out.(sel.(i))
            done
        | _, _, _, Some f ->
          let scratch = ref [||] in
          fun b ~base ~sel ~n ->
            let need = sel.(n - 1) + 1 in
            if Array.length !scratch < need then
              scratch := Array.make (max need 1024) "";
            f base !scratch ~sel ~n;
            let out = !scratch in
            for i = 0 to n - 1 do
              B.add_string b out.(sel.(i))
            done
        | None, None, None, None ->
          fun b ~base ~sel ~n ->
            let fill = make_fill access b in
            for i = 0 to n - 1 do
              seek (base + sel.(i));
              fill ()
            done
      in
      let fillers = List.map mk_filler fills_spec in
      Some
        (fun ~base ~sel ~n ->
          if n > 0 then begin
            let builders = session_open s ~start:base in
            List.iter2 (fun f b -> f b ~base ~sel ~n) fillers builders
          end)
  in
  {
    sc_source;
    sc_count = raw.Source.count;
    sc_run;
    sc_run_range;
    sc_run_batches;
    sc_run_range_batches;
    sc_fills = fills_spec <> [];
    sc_fill = sess;
    sc_fill_sel;
    sc_cache_hits = List.rev !hits;
    sc_probe = probe;
    sc_dataset = dataset;
  }

let scan ?(whole = false) t ~dataset ~required =
  (* every compiled engine owns a private cursor over the shared artifacts
     (index, parsed pages): concurrent sessions can then run serial engines
     over the same dataset without racing on seek state *)
  scan_of t ~dataset ~required ~whole ~raw:(fresh_source t dataset) ~fill:true
    ~session:None

let scan_view ?(whole = false) ?session t ~dataset ~required =
  scan_of t ~dataset ~required ~whole ~raw:(fresh_source t dataset) ~fill:false
    ~session
