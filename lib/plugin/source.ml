open Proteus_model

type unnest_spec = {
  u_elem_ty : Ptype.t;
  u_prepare : string list -> unit;
  u_iter : on_elem:(unit -> unit) -> unit;
  u_field : string -> Access.t;
  u_value : unit -> Value.t;
}

type t = {
  element : Ptype.t;
  count : int;
  seek : int -> unit;
  field : string -> Access.t;
  whole : unit -> Value.t;
  unnest : string -> unnest_spec option;
  validate : (unit -> unit) option;
}

let run t ~on_tuple =
  for i = 0 to t.count - 1 do
    t.seek i;
    on_tuple ()
  done

let run_range t ~lo ~hi ~on_tuple =
  for i = lo to hi - 1 do
    t.seek i;
    on_tuple ()
  done

let run_range_batches _t ~lo ~hi ~batch ~on_batch =
  let batch = if batch <= 0 then 1 else batch in
  let base = ref lo in
  while !base < hi do
    let len = min batch (hi - !base) in
    on_batch ~base:!base ~len;
    base := !base + len
  done

let run_batches t ~batch ~on_batch =
  run_range_batches t ~lo:0 ~hi:t.count ~batch ~on_batch

let boxed_iter t =
  let i = ref 0 in
  fun () ->
    if !i >= t.count then None
    else begin
      t.seek !i;
      incr i;
      Some (t.whole ())
    end

let field_type element path =
  let parts = String.split_on_char '.' path in
  let rec go ty parts nullable =
    match parts with
    | [] -> if nullable then Ptype.Option (Ptype.unwrap_option ty) else ty
    | name :: rest -> (
      let nullable = nullable || (match ty with Ptype.Option _ -> true | _ -> false) in
      match Ptype.unwrap_option ty with
      | Ptype.Record fields -> (
        match List.assoc_opt name fields with
        | Some fty -> go fty rest nullable
        | None -> Perror.plan_error "no field %s reachable via path %s" name path)
      | other -> Perror.plan_error "path %s traverses non-record %a" path Ptype.pp other)
  in
  go element parts false
