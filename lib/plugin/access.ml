open Proteus_model
open Proteus_storage

type 'a fill = int -> 'a array -> sel:int array -> n:int -> unit

type t = {
  ty : Ptype.t;
  nullable : bool;
  get_int : (unit -> int) option;
  get_float : (unit -> float) option;
  get_bool : (unit -> bool) option;
  get_str : (unit -> string) option;
  is_null : (unit -> bool) option;
  get_val : unit -> Value.t;
  fill_int : int fill option;
  fill_float : float fill option;
  fill_bool : bool fill option;
  fill_str : string fill option;
  (* dictionary metadata for promoted string columns: [get_str]/[fill_str]
     still produce decoded strings; kernels that can work on codes read the
     (codes, dict) pair directly *)
  dict : (int array * string array) option;
}

let wrap_ty null ty = match null with None -> ty | Some _ -> Ptype.Option ty

let of_int ?null ?fill get =
  {
    ty = wrap_ty null Ptype.Int;
    nullable = null <> None;
    get_int = Some get;
    get_float = Some (fun () -> float_of_int (get ()));
    get_bool = None;
    get_str = None;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.Int (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Int (get ()));
    fill_int = fill;
    fill_float = None;
    fill_bool = None;
    fill_str = None;
    dict = None;
  }

let of_date ?null ?fill get =
  {
    (of_int ?null ?fill get) with
    ty = wrap_ty null Ptype.Date;
    get_val =
      (match null with
      | None -> fun () -> Value.Date (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Date (get ()));
  }

let of_float ?null ?fill get =
  {
    ty = wrap_ty null Ptype.Float;
    nullable = null <> None;
    get_int = None;
    get_float = Some get;
    get_bool = None;
    get_str = None;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.Float (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Float (get ()));
    fill_int = None;
    fill_float = fill;
    fill_bool = None;
    fill_str = None;
    dict = None;
  }

let of_bool ?null ?fill get =
  {
    ty = wrap_ty null Ptype.Bool;
    nullable = null <> None;
    get_int = None;
    get_float = None;
    get_bool = Some get;
    get_str = None;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.Bool (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.Bool (get ()));
    fill_int = None;
    fill_float = None;
    fill_bool = fill;
    fill_str = None;
    dict = None;
  }

let of_str ?null ?fill get =
  {
    ty = wrap_ty null Ptype.String;
    nullable = null <> None;
    get_int = None;
    get_float = None;
    get_bool = None;
    get_str = Some get;
    is_null = null;
    get_val =
      (match null with
      | None -> fun () -> Value.String (get ())
      | Some isnull -> fun () -> if isnull () then Value.Null else Value.String (get ()));
    fill_int = None;
    fill_float = None;
    fill_bool = None;
    fill_str = fill;
    dict = None;
  }

let boxed ty get_val =
  {
    ty;
    nullable = (match ty with Ptype.Option _ -> true | _ -> false);
    get_int = None;
    get_float = None;
    get_bool = None;
    get_str = None;
    is_null = None;
    get_val;
    fill_int = None;
    fill_float = None;
    fill_bool = None;
    fill_str = None;
    dict = None;
  }

let slice_fill (a : 'a array) : 'a fill =
 fun base out ~sel ~n ->
  for i = 0 to n - 1 do
    let j = Array.unsafe_get sel i in
    Array.unsafe_set out j a.(base + j)
  done

let of_column col ~cur ty =
  match (col : Column.t) with
  | Column.Ints a -> (
    match Ptype.unwrap_option ty with
    | Ptype.Date -> of_date ~fill:(slice_fill a) (fun () -> a.(!cur))
    | _ -> of_int ~fill:(slice_fill a) (fun () -> a.(!cur)))
  | Column.Floats a -> of_float ~fill:(slice_fill a) (fun () -> a.(!cur))
  | Column.Bools a -> of_bool ~fill:(slice_fill a) (fun () -> a.(!cur))
  | Column.Strings a -> of_str ~fill:(slice_fill a) (fun () -> a.(!cur))
  | Column.Dicts (codes, dict) ->
    (* decode on read; batch kernels that can compare codes instead pick up
       the pair from the [dict] field *)
    let fill base out ~sel ~n =
      for i = 0 to n - 1 do
        let j = Array.unsafe_get sel i in
        Array.unsafe_set out j dict.(codes.(base + j))
      done
    in
    { (of_str ~fill (fun () -> dict.(codes.(!cur)))) with dict = Some (codes, dict) }
  | Column.Nullmask (mask, inner) -> (
    let null = Some (fun () -> mask.(!cur)) in
    match inner with
    | Column.Ints a -> (
      match Ptype.unwrap_option ty with
      | Ptype.Date -> of_date ?null (fun () -> a.(!cur))
      | _ -> of_int ?null (fun () -> a.(!cur)))
    | Column.Floats a -> of_float ?null (fun () -> a.(!cur))
    | Column.Bools a -> of_bool ?null (fun () -> a.(!cur))
    | Column.Strings a -> of_str ?null (fun () -> a.(!cur))
    | Column.Dicts (codes, dict) -> of_str ?null (fun () -> dict.(codes.(!cur)))
    | Column.Nullmask _ -> boxed ty (fun () -> Column.get col !cur))
