(** The input plug-in contract (Table 2 of the paper), staged for the
    closure-compiled engine.

    A [Source.t] is the result of pointing a plug-in at a dataset for one
    query: a positioned cursor plus accessors that read {e at the current
    cursor}. The correspondence with the paper's API:

    - [generate()] → {!run} / {!seek}: drive the scan loop;
    - [readValue()/readPath()] → {!field} (dotted paths reach nested
      records in one step, via the structural index's Level 0);
    - [flushValue()] → {!whole} (reconstruct the full element, boxed);
    - [unnestInit()/unnestHasNext()/unnestGetNext()] → {!unnest};
    - [hashValue()] is subsumed by the typed getters of {!Access.t} (the
      engine hashes unboxed values directly). *)

open Proteus_model

type unnest_spec = {
  u_elem_ty : Ptype.t;  (** element type of the nested collection *)
  u_prepare : string list -> unit;
      (** [u_prepare paths] tells the plug-in, at engine-generation time,
          which element fields the query reads: the plug-in can then fuse
          their extraction into the element-boundary scan ("generate code
          processing only the required data fields", Section 5.2). Optional
          optimization — accessors must work without it. *)
  u_iter : on_elem:(unit -> unit) -> unit;
      (** iterate the collection of the {e current} element; during each
          [on_elem] call the element accessors below are valid *)
  u_field : string -> Access.t;  (** field of the current nested element *)
  u_value : unit -> Value.t;     (** current nested element, boxed *)
}

type t = {
  element : Ptype.t;            (** type of one dataset element *)
  count : int;                  (** number of elements (known after indexing) *)
  seek : int -> unit;           (** position the cursor at an OID *)
  field : string -> Access.t;
      (** accessor for a dotted path; raises [Perror.Plan_error] on unknown
          paths whose absence the schema does not allow. The registry's
          segmented cache fills read through these accessors — on a view,
          through the view's private cursor — so parallel workers can
          materialize cache segments of the same dataset independently. *)
  whole : unit -> Value.t;      (** the full current element, boxed *)
  unnest : string -> unnest_spec option;
      (** [None] when the path is not a nested collection *)
  validate : (unit -> unit) option;
      (** structural check of the {e current} element beyond what the
          requested accessors would touch (e.g. CSV row arity against the
          file's nominal arity); raises [Perror.Parse_error] on a malformed
          element. [None] when the format has nothing extra to check.
          Consulted by the error-policy scan drivers before committing a
          row; plain [Fail_fast] scans never call it. *)
}

(** [run t ~on_tuple] is the scan loop: seek 0..count-1, calling [on_tuple]
    at each position. *)
val run : t -> on_tuple:(unit -> unit) -> unit

(** [run_range t ~lo ~hi ~on_tuple] scans the half-open OID range [lo, hi)
    — one morsel of the full scan. *)
val run_range : t -> lo:int -> hi:int -> on_tuple:(unit -> unit) -> unit

(** [run_batches t ~batch ~on_batch] drives the scan as fixed-size batches:
    [on_batch ~base ~len] is called for each OID range [base, base + len)
    ([len <= batch]; only the last batch is short). The batch lane's scan
    loop: no cursor motion happens here — batch consumers read via
    {!Access.t} fills (or seek themselves for the shim/spill paths). *)
val run_batches :
  t -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit

(** [run_range_batches t ~lo ~hi ~batch ~on_batch] batches the half-open
    OID range [lo, hi) — one morsel of the full scan as a batch sequence.
    Batch boundaries depend only on [lo]/[hi]/[batch], never on the worker,
    so morsel-parallel batch execution stays deterministic. *)
val run_range_batches :
  t -> lo:int -> hi:int -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit

(** [boxed_iter t] is a pull-based boxed iterator (the Volcano scan). *)
val boxed_iter : t -> unit -> Value.t option

(** [field_type element path] resolves a dotted path against an element
    type; [Option] layers encountered on the way make the result nullable.
    Raises [Perror.Plan_error] for unknown fields. *)
val field_type : Ptype.t -> string -> Ptype.t
