(** The narrow interface through which the execution layer talks to the
    caching manager (implemented in [proteus_cache]; wired by the facade).
    Keeping it here avoids a dependency cycle: plug-ins fill caches as a
    side-effect of scanning, the engine consults them when compiling. *)

open Proteus_model
open Proteus_storage

(** A materialized relation: OID-aligned columns keyed by field path. *)
type packed = {
  length : int;
  cols : (string * Column.t) list;
}

type t = {
  lookup_field : dataset:string -> path:string -> Column.t option;
      (** a binary column caching expression [x.path] over [dataset] *)
  store_field : dataset:string -> path:string -> bias:Memory.Arena.bias -> Column.t -> unit;
  should_cache_field : dataset:string -> path:string -> ty:Ptype.t -> bool;
      (** the caching policy: e.g. eager for CSV/JSON primitives, never for
          variable-length strings (Section 6 "Cache Policies") *)
  lookup_packed : key:string -> packed option;
      (** a materialized sub-plan result, keyed by plan fingerprint *)
  store_packed :
    key:string -> datasets:string list -> bias:Memory.Arena.bias -> packed -> unit;
      (** [datasets] are the raw inputs the packed result derives from (for
          invalidation and accounting) *)
  lookup_select :
    dataset:string -> binding:string -> pred:Expr.t -> paths:string list ->
    (packed * Expr.t option) option;
      (** a materialized σ-over-scan result covering [pred] over [dataset]
          and carrying at least [paths]. An exact predicate match returns
          [(packed, None)]; a {e subsuming} match — a cached weaker
          predicate, e.g. [x > 0] answering [x > 10] — returns the residual
          predicate to re-apply (Section 6 lists this as future work; it is
          implemented here behind a policy flag) *)
  store_select :
    dataset:string -> binding:string -> pred:Expr.t -> paths:string list ->
    bias:Memory.Arena.bias -> packed -> unit;
  should_cache_select : dataset:string -> bool;
  quarantine : id:string -> unit;
      (** account one fill discarded instead of installed because the
          producing scan saw errors or aborted (install-on-commit: a query
          that skips rows or dies mid-scan must never install a
          partially-filled or hole-y cache block) *)
  note_fill : dataset:string -> segments:int -> rows:int -> unit;
      (** account one committed segmented fill: [segments] per-range buffers
          were blit-assembled into [rows]-row cache columns for [dataset]
          (serial fills count as a single segment) *)
  note_selective : dataset:string -> path:string -> ranged:bool -> unit;
      (** workload feedback: the engine compiled a selective comparison
          conjunct over [dataset.path] — the promotion policy's signal that
          the column is hot (ticked once per query compilation, not per
          tuple). [ranged] marks a range (not just equality) comparison:
          the additional signal that a sorted projection would pay off *)
  lookup_zones : dataset:string -> path:string -> Zonemap.t option;
      (** the zone map of a {e promoted} cached column, if any: per-zone
          min/max the scan drivers consult to skip whole morsels/batches
          that cannot satisfy a pushed-down comparison *)
  lookup_projection : dataset:string -> path:string -> Projection.t option;
      (** the sorted projection of a {e promoted} cached column, if any:
          a value-ordered copy + OID permutation that proves morsels empty
          under range conjuncts even when the data is unclustered *)
  note_slot_column : dataset:string -> path:string -> unit;
      (** the registry materialized a promoted path straight from a format
          index (pre-parsed slot column) — manager stats/costing signal *)
}

(** A cache handle that never hits and never stores (caching disabled). *)
val disabled : t
