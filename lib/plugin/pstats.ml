(* Plugin-layer observability totals, mirrored into the engine's [Counters]
   snapshot (the engine depends on this library, not vice versa — the same
   externally-owned-total pattern Fault and Resilience.Stats use).

   [slot_reads] counts rows routed through a pre-parsed slot column: a scan
   construction whose cache hit is served by a column the registry
   materialized straight from format-index spans ticks the source's row
   count once — the rows that would otherwise numparse/span-decode. *)

let slot_reads = Atomic.make 0

let add_slot_reads n = ignore (Atomic.fetch_and_add slot_reads n)

let slot_reads_total () = Atomic.get slot_reads

let reset () = Atomic.set slot_reads 0
