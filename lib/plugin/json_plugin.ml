open Proteus_model
module Ji = Proteus_format.Json_index

let nullable_of_ty ty = match ty with Ptype.Option _ -> true | _ -> false

let make ~element ~index =
  let index_src = Ji.source index in
  let obj = ref 0 in
  (* One entry-resolver per path, built once per query. Fixed-schema inputs
     resolve the Level-0 slot here, at "code generation" time; flexible
     inputs fall back to a per-object Level-0 lookup, memoized per OID so
     that a predicate and a projection on the same field share the lookup. *)
  let entry_resolver path : unit -> Ji.entry option =
    match Ji.slot index path with
    | Some slot -> fun () -> Some (Ji.entry_at index ~obj:!obj ~slot)
    | None -> (
      (* flexible mode: intern the path once here; per tuple only an
         integer binary search over the object's Level 0 remains *)
      match Ji.path_id index path with
      | None -> fun () -> None
      | Some id ->
        let cached_obj = ref (-1) in
        let cached : Ji.entry option ref = ref None in
        fun () ->
          if !cached_obj <> !obj then begin
            cached := Ji.find_by_id index ~obj:!obj ~id;
            cached_obj := !obj
          end;
          !cached)
  in
  (* Span resolvers are the hot-path variant: each one owns a scratch
     {!Ji.span} refilled in place, so a steady-state scan allocates nothing
     per tuple. Under multi-domain execution this matters doubly — per-tuple
     minor-heap records serialize the workers on the shared GC barrier.
     Accessors (and their spans) are private to one scan_view instance,
     hence to one domain. *)
  let span_resolver path : Ji.span * (unit -> bool) =
    let sp = Ji.make_span () in
    let resolve =
      match Ji.slot index path with
      | Some slot ->
        fun () ->
          Ji.entry_span index ~obj:!obj ~slot sp;
          true
      | None -> (
        match Ji.path_id index path with
        | None -> fun () -> false
        | Some id ->
          (* flexible mode: memoize the slot per OID so a predicate and a
             projection on the same field share the Level-0 search *)
          let cached_obj = ref (-1) in
          let cached_slot = ref (-1) in
          fun () ->
            if !cached_obj <> !obj then begin
              cached_slot := Ji.slot_by_id index ~obj:!obj ~id;
              cached_obj := !obj
            end;
            !cached_slot >= 0
            && begin
                 Ji.entry_span index ~obj:!obj ~slot:!cached_slot sp;
                 true
               end)
    in
    (sp, resolve)
  in
  (* Typed accessor over any (scratch span, resolver) pair — the indexed
     Level-0 slots and the unnest dotted-path fallback share one reader
     family, so both stay allocation-free per access. *)
  let span_accessor_over ~(ty : Ptype.t) (sp, resolve) : Access.t =
    let base = Ptype.unwrap_option ty in
    let is_null () = (not (resolve ())) || sp.Ji.sp_kind = Ji.Knull in
    let require what =
      if not (resolve () && sp.Ji.sp_kind <> Ji.Knull) then
        Perror.type_error "JSON: null/%s value where %s expected" "missing" what
    in
    let null = if nullable_of_ty ty then Some is_null else None in
    match base with
    | Ptype.Int ->
      Access.of_int ?null (fun () ->
          require "int";
          Ji.span_int index sp)
    | Ptype.Date ->
      Access.of_date ?null (fun () ->
          require "date";
          match sp.Ji.sp_kind with
          | Ji.Kstr ->
            Date_util.of_span index_src ~start:(sp.Ji.sp_start + 1)
              ~stop:(sp.Ji.sp_stop - 1)
          | _ -> Ji.span_int index sp)
    | Ptype.Float ->
      Access.of_float ?null (fun () ->
          require "float";
          match sp.Ji.sp_kind with
          | Ji.Kint -> float_of_int (Ji.span_int index sp)
          | _ -> Ji.span_float index sp)
    | Ptype.Bool ->
      Access.of_bool ?null (fun () ->
          require "bool";
          Ji.span_bool index sp)
    | Ptype.String ->
      Access.of_str ?null (fun () ->
          require "string";
          Ji.span_string index sp)
    | Ptype.Record _ | Ptype.Collection _ ->
      Access.boxed ty (fun () ->
          if resolve () && sp.Ji.sp_kind <> Ji.Knull then Ji.span_value index sp
          else Value.Null)
    | Ptype.Option _ -> assert false
  in
  let span_accessor_of ~(ty : Ptype.t) path : Access.t =
    span_accessor_over ~ty (span_resolver path)
  in
  (* Batch lane for fixed-schema inputs: the Level-0 slot is known at
     generation time, so a fill reads entries at explicit OIDs — no cursor,
     no per-object lookup. Non-nullable primitive fields only; everything
     else keeps scalar accessors (the engine shims or falls back). *)
  let batch_fills ~(ty : Ptype.t) ~slot (a : Access.t) : Access.t =
    if nullable_of_ty ty then a
    else
      (* one scratch span per accessor: the fill loop stays allocation-free *)
      let sp = Ji.make_span () in
      let require what o =
        Ji.entry_span index ~obj:o ~slot sp;
        if sp.Ji.sp_kind = Ji.Knull then
          Perror.type_error "JSON: null/%s value where %s expected" "missing" what
      in
      let fill read = fun base out ~sel ~n ->
        for i = 0 to n - 1 do
          let j = sel.(i) in
          out.(j) <- read (base + j)
        done
      in
      match ty with
      | Ptype.Int ->
        { a with
          Access.fill_int =
            Some
              (fill (fun o ->
                   require "int" o;
                   Ji.span_int index sp)) }
      | Ptype.Date ->
        { a with
          Access.fill_int =
            Some
              (fill (fun o ->
                   require "date" o;
                   match sp.Ji.sp_kind with
                   | Ji.Kstr ->
                     Date_util.of_span index_src ~start:(sp.Ji.sp_start + 1)
                       ~stop:(sp.Ji.sp_stop - 1)
                   | _ -> Ji.span_int index sp)) }
      | Ptype.Float ->
        { a with
          Access.fill_float =
            Some
              (fill (fun o ->
                   require "float" o;
                   match sp.Ji.sp_kind with
                   | Ji.Kint -> float_of_int (Ji.span_int index sp)
                   | _ -> Ji.span_float index sp)) }
      | Ptype.Bool ->
        { a with
          Access.fill_bool =
            Some
              (fill (fun o ->
                   require "bool" o;
                   Ji.span_bool index sp)) }
      | Ptype.String ->
        { a with
          Access.fill_str =
            Some
              (fill (fun o ->
                   require "string" o;
                   Ji.span_string index sp)) }
      | _ -> a
  in
  let accessor_cache : (string, Access.t) Hashtbl.t = Hashtbl.create 8 in
  let field path =
    match Hashtbl.find_opt accessor_cache path with
    | Some a -> a
    | None ->
      let ty = Source.field_type element path in
      let a = span_accessor_of ~ty path in
      let a =
        match Ji.slot index path with
        | Some slot -> batch_fills ~ty ~slot a
        | None -> a
      in
      Hashtbl.replace accessor_cache path a;
      a
  in
  let whole () =
    let start, stop = Ji.object_span index !obj in
    Ji.read_value index { Ji.start; stop; kind = Ji.Kobj }
  in
  let unnest path =
    match Ptype.unwrap_option (Source.field_type element path) with
    | Ptype.Collection (_, elem_ty) ->
      let entry = entry_resolver path in
      (* current nested element span, valid during u_iter callbacks *)
      let elem_start = ref 0 and elem_stop = ref 0 in
      (* Fused extraction (u_prepare): the element-boundary walk also
         records the value spans of the fields the query reads, so each
         element is scanned exactly once. *)
      let wanted = ref [||] in
      let slot_starts = ref [||] and slot_stops = ref [||] in
      let u_prepare paths =
        let simple =
          List.filter
            (fun f ->
              (not (String.contains f '.'))
              && Ptype.is_primitive
                   (Ptype.unwrap_option (Source.field_type elem_ty f)))
            paths
        in
        wanted := Array.of_list simple;
        slot_starts := Array.make (Array.length !wanted) (-1);
        slot_stops := Array.make (Array.length !wanted) (-1)
      in
      let elem_scanned = ref false in
      let u_iter ~on_elem =
        match entry () with
        | None -> ()
        | Some e when e.Ji.kind = Ji.Knull -> ()
        | Some e ->
          Ji.iter_array_spans index e ~f:(fun ~start ~stop ->
              elem_start := start;
              elem_stop := stop;
              elem_scanned := false;
              on_elem ())
      in
      (* one early-exit member walk per element, run on the first prepared
         field access and shared by all of them *)
      let ensure_scanned () =
        if not !elem_scanned then begin
          Ji.scan_span_fields index ~start:!elem_start ~stop:!elem_stop
            ~names:!wanted ~starts:!slot_starts ~stops:!slot_stops;
          elem_scanned := true
        end
      in
      let slot_of f =
        let rec go k =
          if k >= Array.length !wanted then None
          else if String.equal !wanted.(k) f then Some k
          else go (k + 1)
        in
        go 0
      in
      let elem_field_cache : (string, Access.t) Hashtbl.t = Hashtbl.create 4 in
      let u_field f =
        match Hashtbl.find_opt elem_field_cache f with
        | Some a -> a
        | None ->
          let fty = Source.field_type elem_ty f in
          let a =
            match slot_of f with
            | Some k ->
              (* read from the shared per-element scan's slots *)
              let starts = !slot_starts and stops = !slot_stops in
              let span_missing () =
                ensure_scanned ();
                starts.(k) < 0 || index_src.[starts.(k)] = 'n'
              in
              let null = if nullable_of_ty fty then Some span_missing else None in
              let base = Ptype.unwrap_option fty in
              (match base with
              | Ptype.Int ->
                Access.of_int ?null (fun () ->
                    ensure_scanned ();
                    Proteus_format.Numparse.int_span index_src ~start:starts.(k)
                      ~stop:stops.(k))
              | Ptype.Date ->
                Access.of_date ?null (fun () ->
                    ensure_scanned ();
                    Proteus_format.Numparse.int_span index_src ~start:starts.(k)
                      ~stop:stops.(k))
              | Ptype.Float ->
                Access.of_float ?null (fun () ->
                    ensure_scanned ();
                    Proteus_format.Numparse.float_span index_src ~start:starts.(k)
                      ~stop:stops.(k))
              | Ptype.Bool ->
                Access.of_bool ?null (fun () ->
                    ensure_scanned ();
                    index_src.[starts.(k)] = 't')
              | Ptype.String ->
                Access.of_str ?null (fun () ->
                    ensure_scanned ();
                    Ji.read_string_span index ~start:starts.(k) ~stop:stops.(k))
              | _ -> assert false (* u_prepare keeps primitives only *))
            | None ->
              (* un-fused fallback: scan the element span for the path.
                 The scratch span is private to this accessor, so repeated
                 per-element lookups allocate nothing. *)
              let parts = String.split_on_char '.' f in
              let sp = Ji.make_span () in
              let resolve () =
                Ji.find_parts_span index ~start:!elem_start ~stop:!elem_stop
                  ~parts sp
              in
              span_accessor_over ~ty:fty (sp, resolve)
          in
          Hashtbl.replace elem_field_cache f a;
          a
      in
      let u_value () =
        let j, _ = Proteus_format.Json.parse index_src ~pos:!elem_start in
        Proteus_format.Json.to_value j
      in
      Some { Source.u_elem_ty = elem_ty; u_prepare; u_iter; u_field; u_value }
    | _ -> None
    | exception Perror.Plan_error _ -> None
  in
  {
    Source.element;
    count = Ji.object_count index;
    seek = (fun i -> obj := i);
    field;
    whole;
    unnest;
    validate = None;
  }
