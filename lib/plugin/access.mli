(** Typed field accessors — the runtime face of an input plug-in.

    An accessor reads one field of the input element a scan cursor currently
    points at. The plug-in constructs it {e once per query} (Section 5.1's
    code generation, staged here as closure construction): the format
    dispatch, byte offsets, index slots and type checks are all resolved at
    construction time, so each per-tuple call is a monomorphic closure.

    The typed getters ([get_int], ...) are present only when the plug-in
    could specialize for that type; [get_val] always works and is the boxed
    fallback used by un-specialized consumers (the Volcano interpreter, and
    any expression whose type the compiler could not pin down).

    The optional batch getters ([fill_int], ...) are the vectorized lane:
    [fill base out ~sel ~n] writes the field value of element [base + sel.(i)]
    into [out.(sel.(i))] for each of the first [n] selection-vector entries —
    batch-aligned, so slot [j] of every buffer corresponds to element
    [base + j] and filters that shrink [sel] never move data. Plug-ins
    provide them only for non-nullable primitive fields they can extract
    without going through the scan cursor (direct column slices, positional
    index spans); everything else is reached by the engine through a
    seek-then-get shim, so a plug-in that provides no fills still works
    unmodified. *)

open Proteus_model

(** [fill base out ~sel ~n]: for 0 <= i < n, [out.(sel.(i)) <- value at
    element OID [base + sel.(i)]]. Entries of [out] outside the selection
    are left untouched. *)
type 'a fill = int -> 'a array -> sel:int array -> n:int -> unit

type t = {
  ty : Ptype.t;                        (** static type, [Option]-wrapped if nullable *)
  nullable : bool;
  get_int : (unit -> int) option;
  get_float : (unit -> float) option;
  get_bool : (unit -> bool) option;
  get_str : (unit -> string) option;
  is_null : (unit -> bool) option;     (** present when [nullable] with typed paths *)
  get_val : unit -> Value.t;           (** boxed read; yields [Null] for nulls *)
  fill_int : int fill option;          (** batch lane (never set for nullable fields) *)
  fill_float : float fill option;
  fill_bool : bool fill option;
  fill_str : string fill option;
  dict : (int array * string array) option;
      (** dictionary metadata when the accessor reads a promoted
          ({!Proteus_storage.Column.Dicts}) cache column: [get_str]/[fill_str]
          still decode, while comparison kernels may work on the codes
          directly (equality as a code compare, LIKE once per entry) *)
}

(** {1 Constructors} *)

val of_int : ?null:(unit -> bool) -> ?fill:int fill -> (unit -> int) -> t
val of_date : ?null:(unit -> bool) -> ?fill:int fill -> (unit -> int) -> t
val of_float : ?null:(unit -> bool) -> ?fill:float fill -> (unit -> float) -> t
val of_bool : ?null:(unit -> bool) -> ?fill:bool fill -> (unit -> bool) -> t
val of_str : ?null:(unit -> bool) -> ?fill:string fill -> (unit -> string) -> t

(** [boxed ty f] wraps a boxed-only accessor (nested values etc.). *)
val boxed : Ptype.t -> (unit -> Value.t) -> t

(** [of_column col ~cur ty] reads a {!Proteus_storage.Column.t} at the row
    index in [cur] — the access path for binary columns, caches, and
    materialized intermediates. Typed fast paths match the column payload;
    non-nullable columns also carry direct-slice batch fills. *)
val of_column : Proteus_storage.Column.t -> cur:int ref -> Ptype.t -> t
