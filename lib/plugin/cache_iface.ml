open Proteus_storage

type packed = { length : int; cols : (string * Proteus_storage.Column.t) list }

type t = {
  lookup_field : dataset:string -> path:string -> Column.t option;
  store_field :
    dataset:string -> path:string -> bias:Memory.Arena.bias -> Column.t -> unit;
  should_cache_field : dataset:string -> path:string -> ty:Proteus_model.Ptype.t -> bool;
  lookup_packed : key:string -> packed option;
  store_packed :
    key:string -> datasets:string list -> bias:Memory.Arena.bias -> packed -> unit;
  lookup_select :
    dataset:string ->
    binding:string ->
    pred:Proteus_model.Expr.t ->
    paths:string list ->
    (packed * Proteus_model.Expr.t option) option;
  store_select :
    dataset:string ->
    binding:string ->
    pred:Proteus_model.Expr.t ->
    paths:string list ->
    bias:Memory.Arena.bias ->
    packed ->
    unit;
  should_cache_select : dataset:string -> bool;
  quarantine : id:string -> unit;
  note_fill : dataset:string -> segments:int -> rows:int -> unit;
  note_selective : dataset:string -> path:string -> ranged:bool -> unit;
      (* [ranged] marks a range (not just equality) comparison: the signal
         that a sorted projection would pay off on this column *)
  lookup_zones : dataset:string -> path:string -> Zonemap.t option;
  lookup_projection : dataset:string -> path:string -> Projection.t option;
  note_slot_column : dataset:string -> path:string -> unit;
      (* a promoted path was materialized straight from format-index spans
         (pre-parsed slot column); feeds manager stats and costing *)
}

let disabled =
  {
    lookup_field = (fun ~dataset:_ ~path:_ -> None);
    store_field = (fun ~dataset:_ ~path:_ ~bias:_ _ -> ());
    should_cache_field = (fun ~dataset:_ ~path:_ ~ty:_ -> false);
    lookup_packed = (fun ~key:_ -> None);
    store_packed = (fun ~key:_ ~datasets:_ ~bias:_ _ -> ());
    lookup_select = (fun ~dataset:_ ~binding:_ ~pred:_ ~paths:_ -> None);
    store_select = (fun ~dataset:_ ~binding:_ ~pred:_ ~paths:_ ~bias:_ _ -> ());
    should_cache_select = (fun ~dataset:_ -> false);
    quarantine = (fun ~id:_ -> ());
    note_fill = (fun ~dataset:_ ~segments:_ ~rows:_ -> ());
    note_selective = (fun ~dataset:_ ~path:_ ~ranged:_ -> ());
    lookup_zones = (fun ~dataset:_ ~path:_ -> None);
    lookup_projection = (fun ~dataset:_ ~path:_ -> None);
    note_slot_column = (fun ~dataset:_ ~path:_ -> ());
  }
