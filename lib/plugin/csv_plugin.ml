open Proteus_model
module Csv = Proteus_format.Csv
module Csv_index = Proteus_format.Csv_index

let make ~config ~schema ~index ~src =
  let row = ref 0 in
  let fields = Schema.fields schema in
  (* Resolve everything per-field once: index position, span fetch, typed
     parser. The per-tuple work is just "span + parse". *)
  let accessor (f : Schema.field) fidx : Access.t =
    let span () = Csv_index.field_span index ~row:!row ~field:fidx in
    (* Batch lane: index-driven bulk extraction — span lookups at explicit
       rows, parse only the selected lanes; non-nullable fields only. *)
    let bfill parse =
      fun base out ~sel ~n ->
        for i = 0 to n - 1 do
          let j = sel.(i) in
          let s, e = Csv_index.field_span index ~row:(base + j) ~field:fidx in
          out.(j) <- parse s e
        done
    in
    match Ptype.unwrap_option f.ty with
    | Ptype.Int ->
      let get () =
        let s, e = span () in
        Csv.parse_int src ~start:s ~stop:e
      in
      (match f.ty with
      | Ptype.Option _ ->
        Access.of_int
          ~null:(fun () ->
            let s, e = span () in
            s >= e)
          get
      | _ -> Access.of_int ~fill:(bfill (fun s e -> Csv.parse_int src ~start:s ~stop:e)) get)
    | Ptype.Date ->
      let parse s e =
        if e - s = 10 && src.[s + 4] = '-' then Date_util.of_span src ~start:s ~stop:e
        else Csv.parse_int src ~start:s ~stop:e
      in
      let get () =
        let s, e = span () in
        parse s e
      in
      Access.of_date ~fill:(bfill parse) get
    | Ptype.Float ->
      let get () =
        let s, e = span () in
        Csv.parse_float src ~start:s ~stop:e
      in
      (match f.ty with
      | Ptype.Option _ ->
        Access.of_float
          ~null:(fun () ->
            let s, e = span () in
            s >= e)
          get
      | _ ->
        Access.of_float ~fill:(bfill (fun s e -> Csv.parse_float src ~start:s ~stop:e)) get)
    | Ptype.Bool ->
      let get () =
        let s, e = span () in
        Csv.parse_bool src ~start:s ~stop:e
      in
      Access.of_bool ~fill:(bfill (fun s e -> Csv.parse_bool src ~start:s ~stop:e)) get
    | Ptype.String ->
      let get () =
        let s, e = span () in
        Csv.parse_string src ~start:s ~stop:e
      in
      (match f.ty with
      | Ptype.Option _ ->
        Access.of_str
          ~null:(fun () ->
            let s, e = span () in
            s >= e)
          get
      | _ ->
        Access.of_str ~fill:(bfill (fun s e -> Csv.parse_string src ~start:s ~stop:e)) get)
    | other -> Perror.type_error "CSV field %s of non-primitive type %a" f.name Ptype.pp other
  in
  let accessors =
    List.mapi (fun i (f : Schema.field) -> (f.name, accessor f i)) fields
  in
  let field path =
    match List.assoc_opt path accessors with
    | Some a -> a
    | None -> Perror.plan_error "CSV dataset has no field %s" path
  in
  let whole () =
    Value.record (List.map (fun (name, a) -> (name, a.Access.get_val ())) accessors)
  in
  ignore config;
  (* Fixed-width files are uniform by construction; otherwise check the
     current row's arity against the file's nominal arity, so ragged rows
     (fewer OR extra fields) surface as positioned Parse_errors under the
     error policies instead of being silently mis-read. *)
  let validate =
    if Csv_index.is_fixed_width index then None
    else
      let expected = Csv_index.arity index in
      Some
        (fun () ->
          let nf = Csv_index.row_arity index !row in
          if nf <> expected then begin
            let s, _ = Csv_index.row_span index !row in
            Perror.parse_error ~what:"csv" ~pos:s
              "row has %d fields, expected %d" nf expected
          end)
  in
  {
    Source.element = Schema.to_type schema;
    count = Csv_index.row_count index;
    seek = (fun i -> row := i);
    field;
    whole;
    unnest = (fun _ -> None);
    validate;
  }
