(** A deterministic TPC-H data generator (the lineitem/orders subset used in
    Section 7.1) plus the evaluation's query templates.

    The paper runs SF10 (60M lineitems) and SF100; this generator produces
    the same schema and value distributions at laptop scale (the benchmark
    harness defaults to SF 0.01 ≈ 60k lineitems). As in the paper, file
    contents are shuffled to destroy interesting orders, and all queried
    fields are numeric.

    One [t] renders into every format the evaluation needs: CSV, JSON
    (objects with a fixed field order — machine-generated data), a
    denormalized JSON orders file embedding each order's lineitems (for the
    unnest query of Figure 9), boxed records (for loading the baselines),
    and binary columns. *)

open Proteus_model

type t = {
  sf : float;
  lineitems : Value.t list;
  orders : Value.t list;
  order_count : int;     (** orderkeys are 1..order_count (uniform) *)
}

(** [generate ~sf ()] — deterministic for a given [sf] and [seed]
    (default 42). SF 1.0 ≈ 6M lineitems, 1.5M orders. *)
val generate : ?seed:int -> sf:float -> unit -> t

val lineitem_type : Ptype.t
(** l_orderkey, l_linenumber (1–7), l_quantity (1–50), l_extendedprice,
    l_discount, l_tax — all numeric, as in the experiments. *)

val order_type : Ptype.t
(** o_orderkey, o_custkey, o_totalprice, o_shippriority *)

val denorm_order_type : Ptype.t
(** orders with an embedded [lineitems] array (the denormalized JSON file
    MongoDB-style systems expect) *)

(** {1 Rendering} *)

val lineitem_csv : t -> string
val orders_csv : t -> string

(** JSON writers. [shuffle_fields] (default false) randomizes the field
    order per object: the benchmark instances use it so that no system can
    exploit field order (as the paper stipulates), which keeps Proteus'
    structural index in its flexible per-object Level-0 mode. Without it the
    writer emits machine-generated fixed order, and the index switches to
    the compressed fixed-schema fast path. *)
val lineitem_json : ?shuffle_fields:bool -> t -> string

val orders_json : ?shuffle_fields:bool -> t -> string

(** Sharded renderings: the same rows split into [n] contiguous pieces
    (order preserved, sizes differing by at most one), each rendered as its
    own file — inputs for {!Proteus.Db.register_sharded_csv} /
    [register_sharded_json]. *)
val lineitem_csv_shards : t -> int -> string list

val orders_csv_shards : t -> int -> string list
val lineitem_json_shards : ?shuffle_fields:bool -> t -> int -> string list
val orders_json_shards : ?shuffle_fields:bool -> t -> int -> string list
val denormalized_orders : t -> Value.t list
val denormalized_json : ?shuffle_fields:bool -> t -> string

(** Binary columns, one per field. *)
val lineitem_columns : t -> (string * Proteus_storage.Column.t) list
val orders_columns : t -> (string * Proteus_storage.Column.t) list

(** {1 The Section 7.1 query templates}

    Each takes the dataset name(s) to scan and the selectivity factor
    (0.1/0.2/0.5/1.0 in the paper); the predicate is
    [l_orderkey < sel * order_count], giving exactly that fraction. *)

module Queries : sig
  type projection_variant = Count1 | Max1 | Agg4
  type join_variant = JCount | JMax | JAgg2

  (** Figure 5/6: [SELECT AGG(val1),... FROM lineitem WHERE l_orderkey < X] *)
  val projection :
    lineitem:string -> order_count:int -> variant:projection_variant ->
    selectivity:float -> Proteus_algebra.Plan.t

  (** Figure 7/8: COUNT with 1, 3 or 4 predicates *)
  val selection :
    lineitem:string -> order_count:int -> predicates:int -> selectivity:float ->
    Proteus_algebra.Plan.t

  (** Figure 9/10: orders ⋈ lineitem with aggregates over the orders side *)
  val join :
    orders:string -> lineitem:string -> order_count:int -> variant:join_variant ->
    selectivity:float -> Proteus_algebra.Plan.t

  (** Figure 9 "Unnest": COUNT over the embedded lineitem arrays of the
    denormalized orders *)
  val unnest_count :
    denorm:string -> order_count:int -> selectivity:float -> Proteus_algebra.Plan.t

  (** Figures 11/12: GROUP BY l_linenumber with 1, 3 or 4 aggregates *)
  val group_by :
    lineitem:string -> order_count:int -> aggregates:int -> selectivity:float ->
    Proteus_algebra.Plan.t
end
