open Proteus_model
module Plan = Proteus_algebra.Plan
module Json = Proteus_format.Json

type t = {
  sf : float;
  lineitems : Value.t list;
  orders : Value.t list;
  order_count : int;
}

(* Deterministic xorshift64 PRNG so every run regenerates identical data. *)
module Rng = struct
  type t = { mutable s : int64 }

  let create seed = { s = Int64.of_int (if seed = 0 then 0x2545F491 else seed) }

  let next t =
    let x = t.s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.s <- x;
    Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

  let int t bound = next t mod bound


  (* Fisher–Yates *)
  let shuffle t arr =
    for i = Array.length arr - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done
end

let lineitem_type =
  Ptype.Record
    [
      ("l_orderkey", Ptype.Int);
      ("l_linenumber", Ptype.Int);
      ("l_quantity", Ptype.Int);
      ("l_extendedprice", Ptype.Float);
      ("l_discount", Ptype.Float);
      ("l_tax", Ptype.Float);
    ]

let order_type =
  Ptype.Record
    [
      ("o_orderkey", Ptype.Int);
      ("o_custkey", Ptype.Int);
      ("o_totalprice", Ptype.Float);
      ("o_shippriority", Ptype.Int);
    ]

let denorm_order_type =
  Ptype.Record
    [
      ("o_orderkey", Ptype.Int);
      ("o_custkey", Ptype.Int);
      ("o_totalprice", Ptype.Float);
      ("o_shippriority", Ptype.Int);
      ("lineitems", Ptype.Collection (Ptype.List, lineitem_type));
    ]

let generate ?(seed = 42) ~sf () =
  let rng = Rng.create seed in
  let order_count = max 1 (int_of_float (1_500_000.0 *. sf)) in
  let orders = ref [] and lineitems = ref [] in
  for key = order_count downto 1 do
    let o =
      Value.record
        [
          ("o_orderkey", Value.Int key);
          ("o_custkey", Value.Int (1 + Rng.int rng (max 1 (order_count / 10))));
          ("o_totalprice", Value.Float (float_of_int (85771 + Rng.int rng 55_500_000) /. 100.));
          ("o_shippriority", Value.Int (Rng.int rng 5));
        ]
    in
    orders := o :: !orders;
    (* TPC-H: 1–7 lineitems per order, averaging 4 *)
    let nl = 1 + Rng.int rng 7 in
    for ln = 1 to nl do
      let qty = 1 + Rng.int rng 50 in
      let price = float_of_int (90_000 + Rng.int rng 10_400_000) /. 100. in
      let li =
        Value.record
          [
            ("l_orderkey", Value.Int key);
            ("l_linenumber", Value.Int ln);
            ("l_quantity", Value.Int qty);
            ("l_extendedprice", Value.Float price);
            ("l_discount", Value.Float (float_of_int (Rng.int rng 11) /. 100.));
            ("l_tax", Value.Float (float_of_int (Rng.int rng 9) /. 100.));
          ]
      in
      lineitems := li :: !lineitems
    done
  done;
  (* shuffle both files, as the paper does *)
  let o = Array.of_list !orders and l = Array.of_list !lineitems in
  Rng.shuffle rng o;
  Rng.shuffle rng l;
  { sf; lineitems = Array.to_list l; orders = Array.to_list o; order_count }

let csv_of element records =
  Proteus_format.Csv.of_records Proteus_format.Csv.default_config
    (Schema.of_type element) records

let lineitem_csv t = csv_of lineitem_type t.lineitems
let orders_csv t = csv_of order_type t.orders

let json_of ?(shuffle_fields = false) records =
  let buf = Buffer.create (1 lsl 16) in
  let rng = Rng.create 97 in
  List.iter
    (fun r ->
      let j = Json.of_value r in
      let j =
        if not shuffle_fields then j
        else
          match j with
          | Json.Obj fields ->
            let arr = Array.of_list fields in
            Rng.shuffle rng arr;
            Json.Obj (Array.to_list arr)
          | j -> j
      in
      Json.to_buffer buf j;
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let lineitem_json ?shuffle_fields t = json_of ?shuffle_fields t.lineitems
let orders_json ?shuffle_fields t = json_of ?shuffle_fields t.orders

(* Contiguous n-way split preserving record order (leading chunks take the
   remainder), so a shard set over the rendered pieces enumerates exactly
   the single-file row sequence. *)
let chunk_records n records =
  let len = List.length records in
  let n = max 1 (min n (max 1 len)) in
  let base = len / n and extra = len mod n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: r -> take (k - 1) (x :: acc) r
  in
  let rec go i l =
    if i = n then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let part, rest = take sz [] l in
      part :: go (i + 1) rest
  in
  go 0 records

let lineitem_csv_shards t n = List.map (csv_of lineitem_type) (chunk_records n t.lineitems)
let orders_csv_shards t n = List.map (csv_of order_type) (chunk_records n t.orders)

let lineitem_json_shards ?shuffle_fields t n =
  List.map (json_of ?shuffle_fields) (chunk_records n t.lineitems)

let orders_json_shards ?shuffle_fields t n =
  List.map (json_of ?shuffle_fields) (chunk_records n t.orders)

let denormalized_orders t =
  let by_key = Hashtbl.create 1024 in
  List.iter
    (fun li ->
      let k = Value.to_int (Value.field li "l_orderkey") in
      Hashtbl.replace by_key k (li :: (try Hashtbl.find by_key k with Not_found -> [])))
    t.lineitems;
  List.map
    (fun o ->
      let k = Value.to_int (Value.field o "o_orderkey") in
      let lis = try List.rev (Hashtbl.find by_key k) with Not_found -> [] in
      match o with
      | Value.Record fields ->
        Value.Record (Array.append fields [| ("lineitems", Value.list_ lis) |])
      | _ -> assert false)
    t.orders

let denormalized_json ?shuffle_fields t =
  json_of ?shuffle_fields (denormalized_orders t)

let columns_of element records =
  let schema = Schema.of_type element in
  List.map
    (fun (f : Schema.field) ->
      ( f.name,
        Proteus_storage.Column.of_values f.ty
          (List.map (fun r -> Value.field r f.name) records) ))
    (Schema.fields schema)

let lineitem_columns t = columns_of lineitem_type t.lineitems
let orders_columns t = columns_of order_type t.orders

module Queries = struct
  type projection_variant = Count1 | Max1 | Agg4
  type join_variant = JCount | JMax | JAgg2

  let threshold ~order_count ~selectivity =
    max 1 (int_of_float (selectivity *. float_of_int order_count))

  let li_field x f = Expr.Field (Expr.var x, f)

  let projection ~lineitem ~order_count ~variant ~selectivity =
    let x = threshold ~order_count ~selectivity in
    let pred = Expr.(li_field "l" "l_orderkey" <. int x) in
    let aggs =
      match variant with
      | Count1 -> [ Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      | Max1 ->
        [ Plan.agg ~name:"max_qty" (Monoid.Primitive Monoid.Max) (li_field "l" "l_quantity") ]
      | Agg4 ->
        [
          Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1);
          Plan.agg ~name:"max_qty" (Monoid.Primitive Monoid.Max) (li_field "l" "l_quantity");
          Plan.agg ~name:"cnt2" (Monoid.Primitive Monoid.Count)
            (li_field "l" "l_extendedprice");
          Plan.agg ~name:"max_disc" (Monoid.Primitive Monoid.Max) (li_field "l" "l_discount");
        ]
    in
    Plan.reduce aggs
      (Plan.select pred (Plan.scan ~dataset:lineitem ~binding:"l" ()))

  let selection ~lineitem ~order_count ~predicates ~selectivity =
    let x = threshold ~order_count ~selectivity in
    (* the first predicate controls selectivity; the others are loose bounds
       on further numeric fields, as in the template val1<X AND ... valN<Z *)
    let preds =
      [
        Expr.(li_field "l" "l_orderkey" <. int x);
        Expr.(li_field "l" "l_quantity" <. int 51);
        Expr.(li_field "l" "l_discount" <. float 0.11);
        Expr.(li_field "l" "l_tax" <. float 0.09);
      ]
    in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    Plan.reduce
      [ Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.select
         (Expr.conjoin (take (max 1 predicates) preds))
         (Plan.scan ~dataset:lineitem ~binding:"l" ()))

  let join ~orders ~lineitem ~order_count ~variant ~selectivity =
    let x = threshold ~order_count ~selectivity in
    let aggs =
      match variant with
      | JCount -> [ Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      | JMax ->
        [ Plan.agg ~name:"max_total" (Monoid.Primitive Monoid.Max)
            (Expr.Field (Expr.var "o", "o_totalprice")) ]
      | JAgg2 ->
        [
          Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1);
          Plan.agg ~name:"max_total" (Monoid.Primitive Monoid.Max)
            (Expr.Field (Expr.var "o", "o_totalprice"));
        ]
    in
    Plan.reduce aggs
      (Plan.select
         Expr.(li_field "l" "l_orderkey" <. int x)
         (Plan.join
            ~pred:
              Expr.(
                Field (var "o", "o_orderkey") ==. Field (var "l", "l_orderkey"))
            (Plan.scan ~dataset:lineitem ~binding:"l" ())
            (Plan.scan ~dataset:orders ~binding:"o" ())))

  let unnest_count ~denorm ~order_count ~selectivity =
    let x = threshold ~order_count ~selectivity in
    Plan.reduce
      [ Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1) ]
      (Plan.unnest
         ~pred:Expr.(Field (var "li", "l_orderkey") <. int x)
         ~path:Expr.(Field (var "o", "lineitems"))
         ~binding:"li"
         (Plan.scan ~dataset:denorm ~binding:"o" ()))

  let group_by ~lineitem ~order_count ~aggregates ~selectivity =
    let x = threshold ~order_count ~selectivity in
    let all =
      [
        Plan.agg ~name:"cnt" (Monoid.Primitive Monoid.Count) (Expr.int 1);
        Plan.agg ~name:"sum_qty" (Monoid.Primitive Monoid.Sum) (li_field "l" "l_quantity");
        Plan.agg ~name:"max_price" (Monoid.Primitive Monoid.Max)
          (li_field "l" "l_extendedprice");
        Plan.agg ~name:"min_disc" (Monoid.Primitive Monoid.Min) (li_field "l" "l_discount");
      ]
    in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    Plan.nest
      ~pred:Expr.(li_field "l" "l_orderkey" <. int x)
      ~keys:[ ("l_linenumber", li_field "l" "l_linenumber") ]
      ~aggs:(take (max 1 aggregates) all)
      ~binding:"g"
      (Plan.scan ~dataset:lineitem ~binding:"l" ())
end
