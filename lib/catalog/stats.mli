(** Per-source statistics (Section 5.2 "Enabling Cost-based Optimizations").

    The metadata store keeps dataset cardinalities and min/max values per
    attribute. Statistics collection is delegated to the input plug-ins,
    which fold observations in (i) during cold first accesses, (ii) when a
    blocking operator materializes values, and (iii) when an explicit
    refresh — the paper's idle-time daemon — runs. *)

open Proteus_model

type field_stats = {
  min : Value.t;
  max : Value.t;
  nonnull : int;
  distinct_estimate : int;  (** coarse: min(nonnull, sample-based guess) *)
}

type t

val create : unit -> t

val set_cardinality : t -> int -> unit
val cardinality : t -> int option

(** [observe t path v] folds one value into field [path]'s running stats. *)
val observe : t -> string -> Value.t -> unit

val field : t -> string -> field_stats option

(** [selectivity t path ~op ~value] estimates the fraction of rows
    satisfying [path op value] under a uniform distribution between the
    recorded min and max. [op] is one of [`Lt | `Le | `Gt | `Ge | `Eq].
    Falls back to the textbook default of 10% ([default_selectivity]) when
    no stats exist — the plug-in skeleton behaviour the paper describes. *)
val selectivity : t -> string -> op:[ `Lt | `Le | `Gt | `Ge | `Eq ] -> value:Value.t -> float

val default_selectivity : float

(** {1 Promoted layouts}

    The caching manager records which field paths it promoted to richer
    cached layouts (zone maps over numerics, dictionaries over strings), so
    the cost model can price their scans as binary-column reads instead of
    raw-format parses. *)

val note_promoted : t -> string -> unit
val drop_promoted : t -> string -> unit
val promoted : t -> string -> bool
val any_promoted : t -> bool

(** Rich layouts go further than promotion: a sorted projection or a
    pre-parsed slot column serves reads at (or below) binary-column cost
    with morsel skipping on top, so costing discounts such scans more
    aggressively. [drop_promoted] clears the rich mark too. *)

val note_rich_layout : t -> string -> unit
val rich_layout : t -> string -> bool
val any_rich_layout : t -> bool

val clear : t -> unit

val pp : Format.formatter -> t -> unit
