open Proteus_model

type field_stats = {
  min : Value.t;
  max : Value.t;
  nonnull : int;
  distinct_estimate : int;
}

type field_acc = {
  mutable fmin : Value.t;
  mutable fmax : Value.t;
  mutable fnonnull : int;
  sample : (Value.t, unit) Hashtbl.t;  (* capped distinct sample *)
}

type t = {
  mutable card : int option;
  fields : (string, field_acc) Hashtbl.t;
  promoted : (string, unit) Hashtbl.t;
      (* paths the cache manager promoted to a richer layout (zone maps /
         dictionaries): costing treats their scans as binary-column reads *)
  rich : (string, unit) Hashtbl.t;
      (* promoted paths that went further — sorted projection or pre-parsed
         slot column: reads are binary-column speed with skipping on top *)
}

let sample_cap = 1024

let create () =
  {
    card = None;
    fields = Hashtbl.create 8;
    promoted = Hashtbl.create 4;
    rich = Hashtbl.create 4;
  }

let note_promoted t path = Hashtbl.replace t.promoted path ()

let drop_promoted t path =
  Hashtbl.remove t.promoted path;
  Hashtbl.remove t.rich path

let promoted t path = Hashtbl.mem t.promoted path

let any_promoted t = Hashtbl.length t.promoted > 0

let note_rich_layout t path = Hashtbl.replace t.rich path ()

let rich_layout t path = Hashtbl.mem t.rich path

let any_rich_layout t = Hashtbl.length t.rich > 0

let set_cardinality t n = t.card <- Some n

let cardinality t = t.card

let observe t path v =
  match (v : Value.t) with
  | Null -> ()
  | v ->
    let acc =
      match Hashtbl.find_opt t.fields path with
      | Some acc -> acc
      | None ->
        let acc = { fmin = v; fmax = v; fnonnull = 0; sample = Hashtbl.create 64 } in
        Hashtbl.replace t.fields path acc;
        acc
    in
    if Value.compare v acc.fmin < 0 then acc.fmin <- v;
    if Value.compare v acc.fmax > 0 then acc.fmax <- v;
    acc.fnonnull <- acc.fnonnull + 1;
    if Hashtbl.length acc.sample < sample_cap then Hashtbl.replace acc.sample v ()

let field t path =
  match Hashtbl.find_opt t.fields path with
  | None -> None
  | Some acc ->
    let sampled = Hashtbl.length acc.sample in
    let distinct =
      (* If the sample never filled up, it saw every distinct value. *)
      if sampled < sample_cap then sampled
      else max sampled (acc.fnonnull / 4)
    in
    Some
      {
        min = acc.fmin;
        max = acc.fmax;
        nonnull = acc.fnonnull;
        distinct_estimate = max 1 distinct;
      }

let default_selectivity = 0.10

let to_float_opt (v : Value.t) =
  match v with
  | Int i | Date i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | String _ | Record _ | Coll _ -> None

let selectivity t path ~op ~value =
  match field t path with
  | None -> default_selectivity
  | Some { min; max; distinct_estimate; _ } -> (
    match op with
    | `Eq -> 1.0 /. float_of_int distinct_estimate
    | (`Lt | `Le | `Gt | `Ge) as op -> (
      match to_float_opt min, to_float_opt max, to_float_opt value with
      | Some lo, Some hi, Some v when hi > lo ->
        let frac = (v -. lo) /. (hi -. lo) in
        let frac = Float.max 0.0 (Float.min 1.0 frac) in
        let f = match op with `Lt | `Le -> frac | `Gt | `Ge -> 1.0 -. frac in
        (* Clamp away from 0/1 so costing never collapses to free/full. *)
        Float.max 0.001 (Float.min 0.999 f)
      | _ -> default_selectivity))

let clear t =
  t.card <- None;
  Hashtbl.reset t.fields;
  Hashtbl.reset t.promoted;
  Hashtbl.reset t.rich

let pp ppf t =
  Fmt.pf ppf "card=%a" Fmt.(option ~none:(any "?") int) t.card;
  Hashtbl.iter
    (fun path acc ->
      Fmt.pf ppf "; %s in [%a, %a] (%d non-null)" path Value.pp acc.fmin Value.pp
        acc.fmax acc.fnonnull)
    t.fields
