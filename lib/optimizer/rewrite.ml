open Proteus_model
open Proteus_algebra

let subset vars bound = List.for_all (fun v -> List.mem v bound) vars

let bound_by pred bindings = subset (Expr.free_vars pred) bindings

let wrap pending p =
  match pending with [] -> p | ps -> Plan.Select { pred = Expr.conjoin ps; input = p }

(* Sink every pending conjunct to the lowest operator whose scope binds it.
   [pending] predicates are always bound by the scope of the node they are
   pushed into (the caller guarantees it). *)
let rec push (pending : Expr.t list) (p : Plan.t) : Plan.t =
  match p with
  | Plan.Select { pred; input } -> push (Expr.conjuncts pred @ pending) input
  | Plan.Scan _ -> wrap pending p
  | Plan.Join r ->
    let all = pending @ Expr.conjuncts r.pred in
    let lb = Plan.bindings r.left and rb = Plan.bindings r.right in
    (* For outer joins only the probe (left) side may absorb filters: a
       right-side filter changes padding semantics if hoisted/sunk. Here
       predicates sink, which is safe for Inner; for Left_outer we keep
       everything at the join. *)
    if r.kind = Plan.Left_outer then
      let mine, above = List.partition (fun c -> bound_by c (lb @ rb)) all in
      wrap above (Plan.Join { r with pred = Expr.conjoin mine })
    else begin
      let left_only, rest = List.partition (fun c -> bound_by c lb) all in
      let right_only, here = List.partition (fun c -> bound_by c rb) rest in
      Plan.Join
        {
          r with
          left = push left_only r.left;
          right = push right_only r.right;
          pred = Expr.conjoin here;
        }
    end
  | Plan.Unnest r ->
    let all = pending @ Expr.conjuncts r.pred in
    let input_bound = Plan.bindings r.input in
    let below, here = List.partition (fun c -> bound_by c input_bound) all in
    Plan.Unnest { r with input = push below r.input; pred = Expr.conjoin here }
  | Plan.Reduce r ->
    assert (pending = []);
    Plan.Reduce
      { r with pred = Expr.conjoin []; input = push (Expr.conjuncts r.pred) r.input }
  | Plan.Nest r ->
    (* predicates above a Nest reference the group binding: they stay above *)
    wrap pending
      (Plan.Nest
         { r with pred = Expr.conjoin []; input = push (Expr.conjuncts r.pred) r.input })
  | Plan.Project r ->
    wrap pending (Plan.Project { r with input = push [] r.input })
  | Plan.Sort r ->
    (* selections commute with ordering: sink them below the sort *)
    Plan.Sort { r with input = push pending r.input }

let pushdown_selections p = push [] p

let rec extract_join_keys (p : Plan.t) : Plan.t =
  let p = Plan.map_children extract_join_keys p in
  match p with
  | Plan.Join ({ algo = Plan.Radix_hash; left_key = None; _ } as r) ->
    let lb = Plan.bindings r.left and rb = Plan.bindings r.right in
    let equi =
      List.find_map
        (fun c ->
          match (c : Expr.t) with
          | Expr.Binop (Expr.Eq, l, r) ->
            if subset (Expr.free_vars l) lb && subset (Expr.free_vars r) rb then
              Some (l, r)
            else if subset (Expr.free_vars l) rb && subset (Expr.free_vars r) lb then
              Some (r, l)
            else None
          | _ -> None)
        (Expr.conjuncts r.pred)
    in
    (match equi with
    | Some (lk, rk) -> Plan.Join { r with left_key = Some lk; right_key = Some rk }
    | None -> Plan.Join { r with algo = Plan.Nested_loop })
  | p -> p

(* --- redundant-operator elimination ----------------------------------------

   Mechanical plan construction leaves no-op operators behind: SQL lowering
   wraps hidden sort keys in stacked projections, join reordering can
   surface Const-true selections, and comprehension normalization emits
   projections that only rename a binding. Three local eliminations:

   - a [Select true] disappears;
   - adjacent projections collapse into one, inlining the inner
     projection's definitions into the outer expressions — sound when every
     reference to the inner binding is a field the inner projection
     defines (a whole-record reference to it blocks the collapse);
   - an identity projection (fields = [(n, b.n); ...] verbatim over a
     single-binding input) disappears, α-renaming the input's binding to
     its own — sound only when nothing above reads the record as a whole
     (the raw input record may be wider than the projected one) and the
     rename cannot capture a binder inside the subtree. *)

exception Keep

(* Inline the inner projection's field definitions, refusing (Keep) on any
   reference to [b1] that is not a defined field. *)
let inline_fields b1 f1 e =
  let rec go (e : Expr.t) : Expr.t =
    match e with
    | Expr.Field (Expr.Var v, n) when String.equal v b1 -> (
      match List.assoc_opt n f1 with Some d -> d | None -> raise Keep)
    | Expr.Var v when String.equal v b1 -> raise Keep
    | Expr.Const _ | Expr.Param _ | Expr.Var _ -> e
    | Expr.Field (e, n) -> Expr.Field (go e, n)
    | Expr.Binop (o, l, r) -> Expr.Binop (o, go l, go r)
    | Expr.Unop (o, e) -> Expr.Unop (o, go e)
    | Expr.If (c, t, f) -> Expr.If (go c, go t, go f)
    | Expr.Record_ctor fs -> Expr.Record_ctor (List.map (fun (n, e) -> (n, go e)) fs)
    | Expr.Coll_ctor (c, es) -> Expr.Coll_ctor (c, List.map go es)
  in
  go e

(* Every binder name in the subtree, including ones hidden behind a
   Project/Nest scope wall — the capture check for α-renaming. *)
let rec binders acc (p : Plan.t) =
  let acc =
    match p with
    | Plan.Scan { binding; _ }
    | Plan.Unnest { binding; _ }
    | Plan.Nest { binding; _ }
    | Plan.Project { binding; _ } -> binding :: acc
    | Plan.Select _ | Plan.Join _ | Plan.Reduce _ | Plan.Sort _ -> acc
  in
  List.fold_left binders acc (Plan.children p)

(* α-rename the binding [from] (visible at the root of [p]) to [to_]. The
   walk stops at the node introducing [from]; an Unnest's own predicate
   sees its binding, so it is rewritten alongside. *)
let rec rename_binding ~from ~to_ (p : Plan.t) : Plan.t =
  let sub e = Expr.subst from (Expr.var to_) e in
  match p with
  | Plan.Scan s when s.binding = from -> Plan.Scan { s with binding = to_ }
  | Plan.Project r when r.binding = from -> Plan.Project { r with binding = to_ }
  | Plan.Nest r when r.binding = from -> Plan.Nest { r with binding = to_ }
  | Plan.Unnest r when r.binding = from ->
    Plan.Unnest { r with binding = to_; pred = sub r.pred }
  | p -> Plan.map_children (rename_binding ~from ~to_) (Plan.map_exprs sub p)

let eliminate_redundant (p : Plan.t) : Plan.t =
  (* [`Whole]/[`Paths] uses per binding name across the whole plan — the
     same global-name approximation pushdown_projections relies on. *)
  let required = Analysis.required_paths (Analysis.all_exprs p) in
  let rec go (p : Plan.t) : Plan.t =
    let p = Plan.map_children go p in
    match p with
    | Plan.Select { pred = Expr.Const (Value.Bool true); input } -> input
    | Plan.Project
        ({ fields; input = Plan.Project { binding = b1; fields = f1; input = inner }; _ }
         as r) -> (
      match List.map (fun (n, e) -> (n, inline_fields b1 f1 e)) fields with
      | fields -> go (Plan.Project { r with fields; input = inner })
      | exception Keep -> p)
    | Plan.Project { binding; fields; input } -> (
      let identity_over =
        match Plan.bindings input with
        | [ b ] when List.for_all (fun (n, e) -> Expr.equal e (Expr.path b [ n ])) fields
          -> Some b
        | _ -> None
      in
      match identity_over with
      | None -> p
      | Some b ->
        let names = List.map fst fields in
        let narrowing_safe =
          (* the raw record may be wider than the projected one: every use
             above must be a field the projection kept *)
          match List.assoc_opt binding required with
          | Some (`Paths ps) ->
            List.for_all
              (fun pth -> List.mem (List.hd (String.split_on_char '.' pth)) names)
              ps
          | Some `Whole | None -> false
        in
        if not narrowing_safe then p
        else if String.equal b binding then input
        else if List.mem binding (binders [] input) then p
        else rename_binding ~from:b ~to_:binding input)
    | p -> p
  in
  go p

let pushdown_projections (p : Plan.t) : Plan.t =
  let required = Analysis.required_paths (Analysis.all_exprs p) in
  let rec go (p : Plan.t) =
    match p with
    | Plan.Scan s ->
      let fields =
        match List.assoc_opt s.binding required with
        | Some `Whole | None -> None
        | Some (`Paths ps) ->
          (* root segments, deduplicated, in first-use order *)
          let roots =
            List.fold_left
              (fun acc p ->
                let root = List.hd (String.split_on_char '.' p) in
                if List.mem root acc then acc else acc @ [ root ])
              [] ps
          in
          Some roots
      in
      Plan.Scan { s with fields }
    | p -> Plan.map_children go p
  in
  go p
