module Plan = Proteus_algebra.Plan

let optimize cat plan =
  let plan = Rewrite.eliminate_redundant plan in
  let plan = Rewrite.pushdown_selections plan in
  let plan = Planner.reorder_joins cat plan in
  (* reordering can surface a residual Select; sink it again *)
  let plan = Rewrite.pushdown_selections plan in
  let plan = Rewrite.extract_join_keys plan in
  (* sinking can strand collapsed projections and Const-true selections *)
  let plan = Rewrite.eliminate_redundant plan in
  let plan = Rewrite.pushdown_projections plan in
  Plan.validate plan;
  plan

let plan_of_calculus cat calc =
  let calc = Proteus_calculus.Normalize.run calc in
  let plan = Proteus_calculus.To_algebra.run calc in
  optimize cat plan

let explain cat plan =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let label =
      match (p : Plan.t) with
      | Plan.Scan { dataset; binding; fields } ->
        Fmt.str "scan %s as %s%s" dataset binding
          (match fields with
          | Some fs -> " [" ^ String.concat "," fs ^ "]"
          | None -> "")
      | Plan.Select { pred; _ } ->
        Fmt.str "select %s" (Proteus_model.Expr.to_string pred)
      | Plan.Join { kind; algo; pred; _ } ->
        Fmt.str "%s%s on %s"
          (match kind with Plan.Inner -> "join" | Plan.Left_outer -> "outer join")
          (match algo with Plan.Radix_hash -> " (radix-hash)" | Plan.Nested_loop -> " (nested-loop)")
          (Proteus_model.Expr.to_string pred)
      | Plan.Unnest { path; binding; _ } ->
        Fmt.str "unnest %s as %s" (Proteus_model.Expr.to_string path) binding
      | Plan.Reduce { monoid_output; _ } ->
        Fmt.str "reduce [%s]"
          (String.concat ", "
             (List.map (fun (a : Plan.agg) -> a.agg_name) monoid_output))
      | Plan.Nest { keys; _ } ->
        Fmt.str "group by [%s]" (String.concat ", " (List.map fst keys))
      | Plan.Project { fields; _ } ->
        Fmt.str "project [%s]" (String.concat ", " (List.map fst fields))
      | Plan.Sort { keys; limit; _ } ->
        Fmt.str "sort (%d key%s)%s" (List.length keys)
          (if List.length keys = 1 then "" else "s")
          (match limit with Some n -> Fmt.str " limit %d" n | None -> "")
    in
    Buffer.add_string buf
      (Fmt.str "%s%-60s rows≈%-10.0f cost≈%.0f\n"
         (String.make indent ' ') label (Costing.cardinality cat p) (Costing.cost cat p));
    List.iter (go (indent + 2)) (Plan.children p)
  in
  go 0 plan;
  Buffer.contents buf
