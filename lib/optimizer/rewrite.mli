(** Rule-based plan rewrites (Section 4 "Query Optimization").

    - {b selection pushdown}: every predicate conjunct sinks to the lowest
      operator where its variables are in scope — below joins, into the
      embedded filters of unnests, directly above scans;
    - {b join-key extraction}: equi-join conjuncts are identified once here
      so the executor need not re-derive them;
    - {b projection pushdown}: each scan is annotated with the root fields
      actually read above it, so plug-ins extract only those (Section 5.2);
    - {b redundant-operator elimination}: Const-true selections, adjacent
      projections and identity renames disappear before costing. *)

open Proteus_algebra

(** [pushdown_selections p] re-places predicates. Result-preserving
    (property-tested). *)
val pushdown_selections : Plan.t -> Plan.t

(** [extract_join_keys p] fills [left_key]/[right_key] on hash joins that
    have an extractable equi conjunct; downgrades hash joins without one to
    nested loops. *)
val extract_join_keys : Plan.t -> Plan.t

(** [pushdown_projections p] sets [Scan.fields]. *)
val pushdown_projections : Plan.t -> Plan.t

(** [eliminate_redundant p] drops no-op operators: [Select true] nodes,
    adjacent projections (the inner one's definitions inline into the outer,
    unless a whole-record reference blocks it), and identity projections
    over a single-binding input (the input's binding is α-renamed into the
    projection's — only when nothing above reads the record whole, since
    the raw record may be wider than the projected one). Result-preserving. *)
val eliminate_redundant : Plan.t -> Plan.t
