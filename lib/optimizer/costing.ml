open Proteus_model
open Proteus_catalog
module Plan = Proteus_algebra.Plan
module Analysis = Proteus_algebra.Analysis

let format_factor = function
  | Dataset.Json -> 8.0
  | Dataset.Csv _ -> 4.0
  | Dataset.Binary_row -> 1.2
  | Dataset.Binary_column -> 1.0

(* Promotion discount: a dataset with workload-promoted cached columns
   scans closer to binary-column speed — zone maps drop whole morsels of
   selective scans and dictionary codes replace string materialization.
   Halve the distance to the binary factor rather than claiming full
   conversion: only the promoted columns, not every accessed field, earned
   the cheaper layout. Rich layouts (sorted projections, pre-parsed slot
   columns) go further — reads are binary-column speed with morsel
   skipping on top, so the remaining distance quarters instead. *)
let effective_format_factor st fmt =
  let f = format_factor fmt in
  if Stats.any_rich_layout st then 1.0 +. ((f -. 1.0) /. 4.0)
  else if Stats.any_promoted st then 1.0 +. ((f -. 1.0) /. 2.0)
  else f

let default_cardinality = 1000

let default_fanout = 3.0

(* binding -> dataset map of a plan (scans only; unnest bindings have no
   dataset of their own) *)
let rec dataset_map (p : Plan.t) =
  match p with
  | Plan.Scan { dataset; binding; _ } -> [ (binding, dataset) ]
  | _ -> List.concat_map dataset_map (Plan.children p)

let comparison_op (op : Expr.binop) =
  match op with
  | Expr.Lt -> Some `Lt
  | Expr.Le -> Some `Le
  | Expr.Gt -> Some `Gt
  | Expr.Ge -> Some `Ge
  | Expr.Eq -> Some `Eq
  | Expr.Neq | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod | Expr.And
  | Expr.Or | Expr.Concat | Expr.Like ->
    None

let conjunct_selectivity cat ~dataset_of (c : Expr.t) =
  let of_comparison path_e const_e op =
    match Analysis.path_of path_e, const_e with
    | Some (v, p), Expr.Const value when p <> "" -> (
      match dataset_of v with
      | Some ds -> Some (Stats.selectivity (Catalog.stats cat ds) p ~op ~value)
      | None -> None)
    | _ -> None
  in
  let flip = function
    | `Lt -> `Gt
    | `Le -> `Ge
    | `Gt -> `Lt
    | `Ge -> `Le
    | `Eq -> `Eq
  in
  match c with
  | Expr.Binop (op, l, r) -> (
    match comparison_op op with
    | None -> Stats.default_selectivity
    | Some o -> (
      match of_comparison l r o with
      | Some s -> s
      | None -> (
        match of_comparison r l (flip o) with
        | Some s -> s
        | None -> Stats.default_selectivity)))
  | Expr.Const (Value.Bool true) -> 1.0
  | Expr.Const (Value.Bool false) -> 0.0
  | _ -> Stats.default_selectivity

let selectivity cat ~dataset_of pred =
  List.fold_left
    (fun acc c -> acc *. conjunct_selectivity cat ~dataset_of c)
    1.0 (Expr.conjuncts pred)

let scan_cardinality cat dataset =
  match Stats.cardinality (Catalog.stats cat dataset) with
  | Some n -> float_of_int n
  | None -> float_of_int default_cardinality

let distinct_of cat ~dataset_of key =
  match Analysis.path_of key with
  | Some (v, p) when p <> "" -> (
    match dataset_of v with
    | Some ds -> (
      match Stats.field (Catalog.stats cat ds) p with
      | Some fs -> Some (float_of_int fs.Stats.distinct_estimate)
      | None -> None)
    | None -> None)
  | _ -> None

let rec cardinality cat (p : Plan.t) : float =
  let dataset_of =
    let m = dataset_map p in
    fun b -> List.assoc_opt b m
  in
  match p with
  | Plan.Scan { dataset; _ } -> scan_cardinality cat dataset
  | Plan.Select { pred; input } -> cardinality cat input *. selectivity cat ~dataset_of pred
  | Plan.Join { left; right; pred; _ } ->
    let cl = cardinality cat left and cr = cardinality cat right in
    let join_sel =
      (* |L ⋈ R| ≈ |L||R| / max(d_l, d_r) for an equi conjunct *)
      let equi =
        List.find_map
          (fun c ->
            match (c : Expr.t) with
            | Expr.Binop (Expr.Eq, l, r) -> (
              match distinct_of cat ~dataset_of l, distinct_of cat ~dataset_of r with
              | Some dl, Some dr -> Some (1.0 /. Float.max 1.0 (Float.max dl dr))
              | Some d, None | None, Some d -> Some (1.0 /. Float.max 1.0 d)
              | None, None -> None)
            | _ -> None)
          (Expr.conjuncts pred)
      in
      match equi with Some s -> s | None -> Stats.default_selectivity
    in
    Float.max 1.0 (cl *. cr *. join_sel)
  | Plan.Unnest { input; pred; _ } ->
    cardinality cat input *. default_fanout *. selectivity cat ~dataset_of pred
  | Plan.Reduce _ -> 1.0
  | Plan.Nest { input; keys; _ } ->
    let ci = cardinality cat input in
    let groups =
      List.fold_left
        (fun acc (_, k) ->
          match distinct_of cat ~dataset_of k with Some d -> acc *. d | None -> acc *. 10.)
        1.0 keys
    in
    Float.min ci (Float.max 1.0 groups)
  | Plan.Project { input; _ } -> cardinality cat input
  | Plan.Sort { limit; input; _ } -> (
    let ci = cardinality cat input in
    match limit with Some n -> Float.min ci (float_of_int n) | None -> ci)

let rec cost cat (p : Plan.t) : float =
  match p with
  | Plan.Scan { dataset; _ } ->
    let d = Catalog.find cat dataset in
    scan_cardinality cat dataset
    *. effective_format_factor (Catalog.stats cat dataset) d.Dataset.format
  | Plan.Select { input; _ } -> cost cat input +. cardinality cat input
  | Plan.Join { left; right; _ } ->
    (* probe the left stream; build (materialize) the right side *)
    cost cat left +. cost cat right
    +. cardinality cat left
    +. (2.0 *. cardinality cat right)
    +. cardinality cat p
  | Plan.Unnest { input; _ } -> cost cat input +. cardinality cat p
  | Plan.Reduce { input; _ } -> cost cat input +. cardinality cat input
  | Plan.Nest { input; _ } -> cost cat input +. (2.0 *. cardinality cat input)
  | Plan.Project { input; _ } -> cost cat input +. cardinality cat input
  | Plan.Sort { input; _ } ->
    (* n log n comparison cost plus full materialization *)
    let ci = cardinality cat input in
    cost cat input +. (2.0 *. ci) +. (ci *. Float.max 1.0 (Float.log ci))
