open Proteus_model

type engine = Engine_compiled | Engine_volcano | Engine_parallel of int

let run ?batch_size reg ~engine plan =
  Proteus_algebra.Plan.validate plan;
  match engine with
  | Engine_compiled -> Compiled.execute ?batch_size reg plan
  | Engine_volcano -> Volcano.execute reg plan
  | Engine_parallel domains -> Compiled.execute_par ?batch_size reg ~domains plan

type outcome =
  | Completed of Value.t * Fault.report
  | Failed of Fault.report * exn
  | Timed_out of Fault.report
  | Cancelled of Fault.report

let run_guarded ?batch_size ?(policy = Fault.Fail_fast) ?max_errors ?timeout_ms
    reg ~engine plan =
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.)) timeout_ms
  in
  let ctx = Fault.install ~policy ?max_errors ?deadline () in
  Fun.protect ~finally:Fault.clear (fun () ->
      match run ?batch_size reg ~engine plan with
      | v -> Completed (v, Fault.report ctx)
      | exception e ->
        let r = Fault.report ctx in
        (* Classify from the context, not from which worker's exception won
           the pool's failure CAS: under parallel execution a peer's
           [Cancelled] can race the root cause to the surface. *)
        (match e with
        | Fault.Budget_exceeded _ -> Failed (r, e)
        | Fault.Timed_out | Fault.Cancelled ->
          if Fault.budget_hit ctx then
            Failed (r, Fault.Budget_exceeded r.Fault.rp_errors)
          else if Fault.deadline_hit ctx then Timed_out r
          else if e = Fault.Timed_out then Timed_out r
          else Cancelled r
        | e -> Failed (r, e)))
