type engine = Engine_compiled | Engine_volcano | Engine_parallel of int

let run ?batch_size reg ~engine plan =
  Proteus_algebra.Plan.validate plan;
  match engine with
  | Engine_compiled -> Compiled.execute ?batch_size reg plan
  | Engine_volcano -> Volcano.execute reg plan
  | Engine_parallel domains -> Compiled.execute_par ?batch_size reg ~domains plan
