type t = {
  bits : int;
  (* clustered copies: keys and their original row ids, partition by
     partition, each partition sorted by key *)
  keys : int array;
  rows : int array;
  bounds : int array;  (* partition p occupies [bounds.(p), bounds.(p+1)) *)
}

(* Fibonacci hashing spreads consecutive keys across partitions. The
   multiplier is 2^62/phi, masked into OCaml's 63-bit int range. *)
let hash_of key = key * 0x1F9D25E8C1E95A4D land max_int

let partition_of t key = hash_of key lsr (62 - t.bits) land ((1 lsl t.bits) - 1)

let pick_bits bits n =
  match bits with
  | Some b -> b
  | None ->
    (* aim for partitions of ~256 entries, within [2, 12] bits *)
    let rec fit b = if b >= 12 || n lsr b <= 256 then b else fit (b + 1) in
    fit 2

(* order each partition in [plo, phi) so equal keys are adjacent (stable on
   row id so matches stream in input order) *)
let sort_partitions ~bounds ~ckeys ~crows ~plo ~phi =
  for p = plo to phi - 1 do
    let lo = bounds.(p) and hi = bounds.(p + 1) in
    let len = hi - lo in
    if len > 1 then begin
      let idx = Array.init len (fun i -> lo + i) in
      Array.sort
        (fun a b ->
          match Int.compare ckeys.(a) ckeys.(b) with
          | 0 -> Int.compare crows.(a) crows.(b)
          | c -> c)
        idx;
      let tk = Array.map (fun i -> ckeys.(i)) idx in
      let tr = Array.map (fun i -> crows.(i)) idx in
      Array.blit tk 0 ckeys lo len;
      Array.blit tr 0 crows lo len
    end
  done

let build ?bits keys =
  let n = Array.length keys in
  let bits = pick_bits bits n in
  let nparts = 1 lsl bits in
  let shift = 62 - bits in
  let part key = hash_of key lsr shift land (nparts - 1) in
  (* pass 1: histogram *)
  let counts = Array.make (nparts + 1) 0 in
  for i = 0 to n - 1 do
    let p = part keys.(i) in
    counts.(p + 1) <- counts.(p + 1) + 1
  done;
  for p = 1 to nparts do
    counts.(p) <- counts.(p) + counts.(p - 1)
  done;
  let bounds = Array.copy counts in
  (* pass 2: scatter *)
  let ckeys = Array.make n 0 and crows = Array.make n 0 in
  let cursor = Array.copy counts in
  for i = 0 to n - 1 do
    let p = part keys.(i) in
    let at = cursor.(p) in
    ckeys.(at) <- keys.(i);
    crows.(at) <- i;
    cursor.(p) <- at + 1
  done;
  sort_partitions ~bounds ~ckeys ~crows ~plo:0 ~phi:nparts;
  { bits; keys = ckeys; rows = crows; bounds }

(* Partitioned parallel build. Each domain owns a static contiguous chunk of
   the input: pass 1 takes a private histogram per domain, a serial prefix
   sum then reserves a disjoint sub-range per (partition, domain) — domain
   order within each partition — and pass 2 scatters without any
   synchronization. Because chunks and sub-ranges are both laid out in
   ascending row order, the clustered arrays come out identical to the
   serial build even before the per-partition sort; the sort (a total order
   on (key, row)) then guarantees it regardless. *)
let build_par ?bits ~domains keys =
  let n = Array.length keys in
  if domains <= 1 || n < 2 * domains then build ?bits keys
  else begin
    let bits = pick_bits bits n in
    let nparts = 1 lsl bits in
    let shift = 62 - bits in
    let part key = hash_of key lsr shift land (nparts - 1) in
    (* pass 1: per-domain histograms over static chunks *)
    let hists = Array.init domains (fun _ -> Array.make nparts 0) in
    Pool.run ~domains (fun w ->
        let lo, hi = Pool.chunk ~total:n ~parts:domains w in
        let h = hists.(w) in
        for i = lo to hi - 1 do
          let p = part keys.(i) in
          h.(p) <- h.(p) + 1
        done);
    (* serial prefix sum: partition bounds plus per-(domain, partition)
       scatter cursors *)
    let bounds = Array.make (nparts + 1) 0 in
    let starts = Array.make_matrix domains nparts 0 in
    let acc = ref 0 in
    for p = 0 to nparts - 1 do
      bounds.(p) <- !acc;
      for w = 0 to domains - 1 do
        starts.(w).(p) <- !acc;
        acc := !acc + hists.(w).(p)
      done
    done;
    bounds.(nparts) <- !acc;
    (* pass 2: parallel scatter into disjoint sub-ranges *)
    let ckeys = Array.make n 0 and crows = Array.make n 0 in
    Pool.run ~domains (fun w ->
        let lo, hi = Pool.chunk ~total:n ~parts:domains w in
        let cur = starts.(w) in
        for i = lo to hi - 1 do
          let p = part keys.(i) in
          let at = cur.(p) in
          ckeys.(at) <- keys.(i);
          crows.(at) <- i;
          cur.(p) <- at + 1
        done);
    (* parallel per-partition sort: partitions are independent ranges *)
    Pool.run ~domains (fun w ->
        let plo, phi = Pool.chunk ~total:nparts ~parts:domains w in
        sort_partitions ~bounds ~ckeys ~crows ~plo ~phi);
    { bits; keys = ckeys; rows = crows; bounds }
  end

let iter t key ~f =
  let p = partition_of t key in
  let lo = t.bounds.(p) and hi = t.bounds.(p + 1) in
  if hi > lo then begin
    (* binary search for the first occurrence of [key] *)
    let a = ref lo and b = ref hi in
    while !a < !b do
      let mid = (!a + !b) / 2 in
      if t.keys.(mid) < key then a := mid + 1 else b := mid
    done;
    let i = ref !a in
    while !i < hi && t.keys.(!i) = key do
      f t.rows.(!i);
      incr i
    done
  end

let partitions t = 1 lsl t.bits
