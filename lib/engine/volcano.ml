open Proteus_model
open Proteus_plugin
module Plan = Proteus_algebra.Plan

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Interpreted expression evaluation: every call re-walks the expression
   tree — the per-tuple dispatch the compiled engine removes. The dispatch
   counter advances by the number of nodes interpreted. *)
let rec expr_size (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Var _ -> 1
  | Expr.Field (b, _) -> 1 + expr_size b
  | Expr.Binop (_, l, r) -> 1 + expr_size l + expr_size r
  | Expr.Unop (_, x) -> 1 + expr_size x
  | Expr.If (c, t, f) -> 1 + expr_size c + expr_size t + expr_size f
  | Expr.Record_ctor fs -> List.fold_left (fun acc (_, x) -> acc + expr_size x) 1 fs
  | Expr.Coll_ctor (_, xs) -> List.fold_left (fun acc x -> acc + expr_size x) 1 xs

let eval sz env e =
  Counters.add_dispatches sz;
  Expr.eval env e

let eval_pred sz env e =
  Counters.add_dispatches sz;
  Expr.eval_pred env e

(* Build one boxed record per tuple containing only the required paths,
   reconstructing nesting so that interpreted Field chains resolve. *)
let tuple_builder (src : Source.t) (req : [ `Whole | `Paths of string list ]) :
    unit -> Value.t =
  match req with
  | `Whole -> src.Source.whole
  | `Paths [] -> fun () -> Value.record []
  | `Paths paths ->
    (* group paths into a tree of segments, leaves carry accessors *)
    let rec build paths_with_segs =
      (* paths_with_segs : (string list * Access.t) list, grouped by head *)
      let heads =
        List.fold_left
          (fun acc (segs, a) ->
            match segs with
            | [] -> acc
            | h :: rest ->
              let existing = try List.assoc h acc with Not_found -> [] in
              (h, (rest, a) :: existing) :: List.remove_assoc h acc)
          [] paths_with_segs
        |> List.rev
      in
      let fields =
        List.map
          (fun (h, children) ->
            match children with
            | [ ([], a) ] -> (h, fun () -> a.Access.get_val ())
            | children ->
              let sub = build (List.rev children) in
              (h, sub))
          heads
      in
      fun () -> Value.record (List.map (fun (n, get) -> (n, get ())) fields)
    in
    build
      (List.map (fun p -> (String.split_on_char '.' p, src.Source.field p)) paths)

type iter = unit -> Expr.env option

type provider = dataset:string -> required:string list -> Source.t

let rec open_plan (reg : provider)
    (required : (string * [ `Whole | `Paths of string list ]) list) (p : Plan.t) : iter
    =
  match p with
  | Plan.Scan { dataset; binding; _ } ->
    let req =
      match List.assoc_opt binding required with
      | Some r -> r
      | None -> `Paths []
    in
    let paths = match req with `Paths ps -> ps | `Whole -> [] in
    let src = reg ~dataset ~required:paths in
    let build = tuple_builder src req in
    let i = ref 0 in
    (* Under Skip_row, a row whose structural validation or required reads
       fail is dropped and accounted — [build] touches exactly the paths
       the query needs, so the skip set matches the compiled engine's
       probe-then-commit and results stay bit-identical across engines. *)
    let rec next () =
      if !i >= src.Source.count then None
      else begin
        let row = !i in
        incr i;
        if row land 1023 = 0 then Fault.check_cancel ();
        src.Source.seek row;
        match
          (match src.Source.validate with
          | Some v when Fault.skipping () -> v ()
          | _ -> ());
          build ()
        with
        | v ->
          Counters.add_tuples 1;
          Some [ (binding, v) ]
        | exception e when Fault.skipping () && Fault.recoverable e ->
          Fault.record_skip ~source:dataset ~row e;
          next ()
      end
    in
    next
  | Plan.Select { pred; input } ->
    let next = open_plan reg required input in
    let sz = expr_size pred in
    let rec loop () =
      match next () with
      | None -> None
      | Some env ->
        Counters.add_branch_points 1;
        if eval_pred sz env pred then Some env else loop ()
    in
    loop
  | Plan.Project { binding; fields; input } ->
    let next = open_plan reg required input in
    let szs = List.map (fun (_, e) -> expr_size e) fields in
    fun () ->
      Option.map
        (fun env ->
          [
            ( binding,
              Value.record
                (List.map2 (fun (n, e) sz -> (n, eval sz env e)) fields szs) );
          ])
        (next ())
  | Plan.Unnest { outer; path; binding; pred; input } ->
    let next = open_plan reg required input in
    let psz = expr_size path and csz = expr_size pred in
    let pending : Expr.env list ref = ref [] in
    let rec loop () =
      match !pending with
      | env :: rest ->
        pending := rest;
        Some env
      | [] -> (
        match next () with
        | None -> None
        | Some env ->
          let elems =
            match eval psz env path with
            | Value.Coll (_, es) -> es
            | Value.Null -> []
            | v -> Perror.type_error "unnest over non-collection %a" Value.pp v
          in
          let matches =
            List.filter_map
              (fun e ->
                let env' = (binding, e) :: env in
                if eval_pred csz env' pred then Some env' else None)
              elems
          in
          let out =
            match outer, matches with
            | true, [] -> [ (binding, Value.Null) :: env ]
            | _, ms -> ms
          in
          pending := out;
          loop ())
    in
    loop
  | Plan.Join { kind; left; right; pred; left_key; right_key; algo } ->
    let equi =
      match left_key, right_key with
      | Some l, Some r when algo = Plan.Radix_hash -> Some (l, r)
      | _ ->
        if algo = Plan.Radix_hash then
          List.find_map
            (fun c ->
              match (c : Expr.t) with
              | Expr.Binop (Expr.Eq, l, r) ->
                let lb = Plan.bindings left and rb = Plan.bindings right in
                let subset vs bs = List.for_all (fun v -> List.mem v bs) vs in
                if subset (Expr.free_vars l) lb && subset (Expr.free_vars r) rb then
                  Some (l, r)
                else if subset (Expr.free_vars l) rb && subset (Expr.free_vars r) lb
                then Some (r, l)
                else None
              | _ -> None)
            (Expr.conjuncts pred)
        else None
    in
    let next_left = open_plan reg required left in
    let psz = expr_size pred in
    let null_right = List.map (fun b -> (b, Value.Null)) (Plan.bindings right) in
    (* Drain and materialize the build side (boxed). *)
    let right_envs =
      let next_right = open_plan reg required right in
      let rec drain acc =
        match next_right () with
        | Some env ->
          Counters.add_materialized (List.length env);
          drain (env :: acc)
        | None -> List.rev acc
      in
      drain []
    in
    let table = VH.create 256 in
    (match equi with
    | Some (_, rk) ->
      let rsz = expr_size rk in
      List.iter
        (fun env ->
          match eval rsz env rk with
          | Value.Null -> ()
          | k ->
            let prev = try VH.find table k with Not_found -> [] in
            VH.replace table k (env :: prev))
        right_envs
    | None -> ());
    let pending : Expr.env list ref = ref [] in
    let rec loop () =
      match !pending with
      | env :: rest ->
        pending := rest;
        Some env
      | [] -> (
        match next_left () with
        | None -> None
        | Some lenv ->
          let candidates =
            match equi with
            | Some (lk, _) -> (
              match eval (expr_size lk) lenv lk with
              | Value.Null -> []
              | k -> ( try List.rev (VH.find table k) with Not_found -> []))
            | None -> right_envs
          in
          let matches =
            List.filter_map
              (fun renv ->
                let env = lenv @ renv in
                Counters.add_branch_points 1;
                if eval_pred psz env pred then Some env else None)
              candidates
          in
          let out =
            match kind, matches with
            | Plan.Inner, ms -> ms
            | Plan.Left_outer, [] -> [ lenv @ null_right ]
            | Plan.Left_outer, ms -> ms
          in
          pending := out;
          loop ())
    in
    loop
  | Plan.Nest { keys; aggs; pred; binding; input } ->
    let next = open_plan reg required input in
    let psz = expr_size pred in
    let groups :
      (Value.t list
      * [ `Prim of Monoid.acc | `Coll of Ptype.coll * Value.t list ref ] list)
      VH.t =
      VH.create 64
    in
    let order = ref [] in
    let rec drain () =
      match next () with
      | None -> ()
      | Some env ->
        if eval_pred psz env pred then begin
          let kvs = List.map (fun (_, e) -> eval (expr_size e) env e) keys in
          let key = Value.Coll (Ptype.List, kvs) in
          let _, accs =
            match VH.find_opt groups key with
            | Some cell -> cell
            | None ->
              let accs =
                List.map
                  (fun (a : Plan.agg) ->
                    match a.monoid with
                    | Monoid.Primitive prim -> `Prim (Monoid.acc_create prim)
                    | Monoid.Collection c -> `Coll (c, ref []))
                  aggs
              in
              let cell = (kvs, accs) in
              VH.add groups key cell;
              order := key :: !order;
              cell
          in
          List.iter2
            (fun (a : Plan.agg) acc ->
              let v = eval (expr_size a.expr) env a.expr in
              match acc with
              | `Prim acc -> Monoid.acc_step acc v
              | `Coll (_, cell) -> cell := v :: !cell)
            aggs accs
        end;
        drain ()
    in
    drain ();
    let remaining = ref (List.rev !order) in
    fun () ->
      (match !remaining with
      | [] -> None
      | key :: rest ->
        remaining := rest;
        let kvs, accs = VH.find groups key in
        let key_fields = List.map2 (fun (n, _) v -> (n, v)) keys kvs in
        let agg_fields =
          List.map2
            (fun (a : Plan.agg) acc ->
              ( a.agg_name,
                match acc with
                | `Prim acc -> Monoid.acc_value acc
                | `Coll (c, cell) -> Monoid.collect c (List.rev !cell) ))
            aggs accs
        in
        Some [ (binding, Value.record (key_fields @ agg_fields)) ])
  | Plan.Sort { keys; limit; input } ->
    let next = open_plan reg required input in
    let key_szs = List.map (fun (e, _) -> expr_size e) keys in
    let rec drain acc =
      match next () with
      | None -> List.rev acc
      | Some env ->
        Counters.add_materialized (List.length env);
        drain ((List.map2 (fun (e, _) sz -> eval sz env e) keys key_szs, env) :: acc)
    in
    let cmp (ka, _) (kb, _) =
      let rec go ks ds =
        match ks, ds with
        | (a, b) :: rest, (_, d) :: drest ->
          let c = Value.compare a b in
          if c <> 0 then (match (d : Plan.sort_dir) with Plan.Asc -> c | Plan.Desc -> -c)
          else go rest drest
        | _, _ -> 0
      in
      go (List.combine ka kb) keys
    in
    let sorted = List.stable_sort cmp (drain []) in
    let remaining =
      ref
        (match limit with
        | None -> sorted
        | Some n -> List.filteri (fun i _ -> i < n) sorted)
    in
    fun () ->
      (match !remaining with
      | [] -> None
      | (_, env) :: rest ->
        remaining := rest;
        Some env)
  | Plan.Reduce _ -> Perror.plan_error "Reduce below the plan root is not supported"

let execute_with (reg : provider) (plan : Plan.t) : Value.t =
  let required = Exprc.required_paths (Compiled.all_exprs plan) in
  match plan with
  | Plan.Reduce { monoid_output; pred; input } ->
    let next = open_plan reg required input in
    let psz = expr_size pred in
    let accs =
      List.map
        (fun (a : Plan.agg) ->
          match a.monoid with
          | Monoid.Primitive prim -> `Prim (a, Monoid.acc_create prim, expr_size a.expr)
          | Monoid.Collection c -> `Coll (a, c, ref [], expr_size a.expr))
        monoid_output
    in
    let rec drain () =
      match next () with
      | None -> ()
      | Some env ->
        if eval_pred psz env pred then
          List.iter
            (function
              | `Prim ((a : Plan.agg), acc, sz) -> Monoid.acc_step acc (eval sz env a.expr)
              | `Coll ((a : Plan.agg), _, cell, sz) -> cell := eval sz env a.expr :: !cell)
            accs;
        drain ()
    in
    drain ();
    let value = function
      | `Prim (_, acc, _) -> Monoid.acc_value acc
      | `Coll (_, c, cell, _) -> Monoid.collect c (List.rev !cell)
    in
    (match accs with
    | [ one ] -> value one
    | many ->
      Value.record
        (List.map
           (fun a ->
             let name =
               match a with `Prim ((g : Plan.agg), _, _) -> g.agg_name | `Coll ((g : Plan.agg), _, _, _) -> g.agg_name
             in
             (name, value a))
           many))
  | _ ->
    (* plans rooted at a raw binding stream expose whole records *)
    let visible = Plan.bindings plan in
    let required =
      List.map (fun b -> (b, `Whole))
        visible
      @ List.filter (fun (b, _) -> not (List.mem b visible)) required
    in
    let next = open_plan reg required plan in
    let shape env =
      match visible with
      | [ b ] -> ( match List.assoc_opt b env with Some v -> v | None -> Value.Null)
      | bs ->
        Value.record
          (List.map
             (fun b ->
               (b, match List.assoc_opt b env with Some v -> v | None -> Value.Null))
             bs)
    in
    let rec drain acc =
      match next () with
      | None -> Value.bag (List.rev acc)
      | Some env -> drain (shape env :: acc)
    in
    drain []


let execute (reg : Registry.t) (plan : Plan.t) : Value.t =
  let provider ~dataset ~required =
    (Registry.scan reg ~dataset ~required).Registry.sc_source
  in
  execute_with provider plan
