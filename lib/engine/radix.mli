(** Radix-clustered join index over integer keys — the radix hash join of
    Manegold et al. [39] as adapted by Balkesen et al. [9], which the paper's
    Proteus uses for joins and grouping.

    [build] is the blocking part the paper wraps in a pre-compiled function
    ("clustering the materialized entries based on their hash values"): keys
    are scattered into 2^bits cache-friendly partitions by a multiplicative
    hash (two passes: count, then permute), and each partition is ordered so
    equal keys are adjacent. [iter] then touches exactly one partition per
    probe. *)

type t

(** [build keys] indexes [keys.(row) = key] for all rows. *)
val build : ?bits:int -> int array -> t

(** [build_par ~domains keys] is [build keys] computed with a partitioned
    parallel plan over the worker {!Pool}: per-domain histograms over static
    contiguous chunks, a serial prefix sum reserving disjoint
    per-(domain, partition) sub-ranges, a synchronization-free parallel
    scatter, and a parallel per-partition sort. The result is structurally
    identical to the serial build — the final (key, row) sort is a total
    order, so any scatter order canonicalizes to the same layout.
    [domains <= 1] falls back to {!build}. Must not be called from inside a
    [Pool.run] job (runs are serialized on a global lock). *)
val build_par : ?bits:int -> domains:int -> int array -> t

(** [iter t key ~f] calls [f row] for every row whose key equals [key]. *)
val iter : t -> int -> f:(int -> unit) -> unit

(** Number of partitions (for tests). *)
val partitions : t -> int
