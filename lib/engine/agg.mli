(** Staged aggregate accumulators.

    A factory builds per-group accumulator instances whose [step] closure was
    specialized once per query: integer sums accumulate into an [int ref]
    with no boxing per tuple, float folds into a [float ref], and only
    genuinely dynamic cases fall back to the boxed {!Monoid.acc}.

    For morsel-driven parallel execution each worker folds its morsels into
    a private instance; [partial] then exports the worker's state and
    {!merge}/{!finalize} combine the per-worker partials into the final
    aggregate ([Avg] exports a (sum, count) record, everything else its
    plain accumulated value). *)

open Proteus_model

type instance = {
  step : unit -> unit;        (** fold the current tuple in *)
  value : unit -> Value.t;    (** read the final aggregate out *)
  partial : unit -> Value.t;
      (** read the mergeable partial state out; raises [Perror.Unsupported]
          for collection monoids, which have no order-insensitive partial *)
}

(** [factory monoid compiled] stages the accumulator for folding the values
    of [compiled]; each call to the factory starts a fresh group. *)
val factory : Monoid.t -> Exprc.compiled -> unit -> instance

(** Batch-lane accumulator: [bstep] folds a whole selection at once. The
    vectorized loops fold lanes in selection order with exactly the scalar
    [step]'s operations, so results are bit-identical (floats included) to
    stepping tuple-by-tuple. *)
type binstance = {
  bstep : base:int -> sel:int array -> n:int -> unit;
  bvalue : unit -> Value.t;
  bpartial : unit -> Value.t;  (** as {!instance.partial} *)
}

(** [batch_factory m ~seek ~scalar ~batch] stages the batch accumulator:
    an array-level loop over [batch]'s kernel buffer when the monoid/lane
    pair supports it, otherwise a per-lane [seek]-then-scalar-[step] shim.
    [None] only for collection monoids (no mergeable partial, stay on the
    tuple lane). *)
val batch_factory :
  Monoid.t ->
  seek:(int -> unit) ->
  scalar:Exprc.compiled ->
  batch:Exprc.bcompiled option ->
  (unit -> binstance) option

(** [merge m a b] combines two partials of monoid [m]. Raises
    [Perror.Unsupported] for collection monoids. *)
val merge : Monoid.t -> Value.t -> Value.t -> Value.t

(** [finalize m partial] turns a merged partial into the aggregate value
    ([Avg] divides sum by count; every other monoid is the identity). *)
val finalize : Monoid.t -> Value.t -> Value.t

(** Whether every monoid in the list supports partial-aggregate merging
    (i.e. no collection monoids). *)
val mergeable : Monoid.t list -> bool
