open Proteus_model

type instance = {
  step : unit -> unit;
  value : unit -> Value.t;
  partial : unit -> Value.t;
}

(* Avg is the one primitive whose final value is not mergeable: partials
   carry (sum, count) explicitly and [finalize] divides at the end. *)
let avg_partial s n () = Value.record [ ("sum", Value.Float !s); ("n", Value.Int !n) ]

let no_partial () =
  Perror.unsupported "collection monoids have no mergeable partial aggregate"

let boxed_factory prim (get : unit -> Value.t) () =
  let acc = Monoid.acc_create prim in
  let value () = Monoid.acc_value acc in
  { step = (fun () -> Monoid.acc_step acc (get ())); value; partial = value }

let factory (m : Monoid.t) (c : Exprc.compiled) : unit -> instance =
  match m, c with
  | Monoid.Primitive Monoid.Count, _ ->
    fun () ->
      let n = ref 0 in
      let value () = Value.Int !n in
      { step = (fun () -> incr n); value; partial = value }
  | Monoid.Primitive Monoid.Sum, Exprc.C_int get ->
    fun () ->
      let s = ref 0 in
      let value () = Value.Int !s in
      { step = (fun () -> s := !s + get ()); value; partial = value }
  | Monoid.Primitive Monoid.Sum, Exprc.C_float get ->
    fun () ->
      let s = ref 0. in
      let value () = Value.Float !s in
      { step = (fun () -> s := !s +. get ()); value; partial = value }
  | Monoid.Primitive Monoid.Max, Exprc.C_int get ->
    fun () ->
      let best = ref min_int and seen = ref false in
      let value () = if !seen then Value.Int !best else Value.Null in
      {
        step =
          (fun () ->
            let v = get () in
            if v > !best then best := v;
            seen := true);
        value;
        partial = value;
      }
  | Monoid.Primitive Monoid.Min, Exprc.C_int get ->
    fun () ->
      let best = ref max_int and seen = ref false in
      let value () = if !seen then Value.Int !best else Value.Null in
      {
        step =
          (fun () ->
            let v = get () in
            if v < !best then best := v;
            seen := true);
        value;
        partial = value;
      }
  | Monoid.Primitive Monoid.Max, Exprc.C_float get ->
    fun () ->
      let best = ref neg_infinity and seen = ref false in
      let value () = if !seen then Value.Float !best else Value.Null in
      {
        step =
          (fun () ->
            let v = get () in
            if v > !best then best := v;
            seen := true);
        value;
        partial = value;
      }
  | Monoid.Primitive Monoid.Min, Exprc.C_float get ->
    fun () ->
      let best = ref infinity and seen = ref false in
      let value () = if !seen then Value.Float !best else Value.Null in
      {
        step =
          (fun () ->
            let v = get () in
            if v < !best then best := v;
            seen := true);
        value;
        partial = value;
      }
  | Monoid.Primitive Monoid.Avg, Exprc.C_int get ->
    fun () ->
      let s = ref 0. and n = ref 0 in
      {
        step =
          (fun () ->
            s := !s +. float_of_int (get ());
            incr n);
        value =
          (fun () -> if !n = 0 then Value.Null else Value.Float (!s /. float_of_int !n));
        partial = avg_partial s n;
      }
  | Monoid.Primitive Monoid.Avg, Exprc.C_float get ->
    fun () ->
      let s = ref 0. and n = ref 0 in
      {
        step =
          (fun () ->
            s := !s +. get ();
            incr n);
        value =
          (fun () -> if !n = 0 then Value.Null else Value.Float (!s /. float_of_int !n));
        partial = avg_partial s n;
      }
  | Monoid.Primitive Monoid.Avg, c ->
    (* boxed Avg keeps explicit (sum, count) state so partials stay
       mergeable; semantics match Monoid.acc_step (Null values skipped) *)
    let get = Exprc.to_val c in
    fun () ->
      let s = ref 0. and n = ref 0 in
      {
        step =
          (fun () ->
            match get () with
            | Value.Null -> ()
            | v ->
              s := !s +. Value.to_float v;
              incr n);
        value =
          (fun () -> if !n = 0 then Value.Null else Value.Float (!s /. float_of_int !n));
        partial = avg_partial s n;
      }
  | Monoid.Primitive Monoid.All, Exprc.C_bool get ->
    fun () ->
      let b = ref true in
      let value () = Value.Bool !b in
      { step = (fun () -> b := !b && get ()); value; partial = value }
  | Monoid.Primitive Monoid.Any, Exprc.C_bool get ->
    fun () ->
      let b = ref false in
      let value () = Value.Bool !b in
      { step = (fun () -> b := !b || get ()); value; partial = value }
  | Monoid.Primitive prim, c -> boxed_factory prim (Exprc.to_val c)
  | Monoid.Collection coll, c ->
    let get = Exprc.to_val c in
    fun () ->
      let acc = ref [] in
      {
        step = (fun () -> acc := get () :: !acc);
        value = (fun () -> Monoid.collect coll (List.rev !acc));
        partial = no_partial;
      }

(* ------------------------------------------------------------------- *)
(* Batch instances: array-level partial loops for the mergeable monoids.
   Every vectorized step folds the selected lanes *in selection order*
   with exactly the operations of the scalar [step] above, so a batch
   aggregate is bit-identical (floats included) to stepping the scalar
   instance tuple-by-tuple in the same order. *)

type binstance = {
  bstep : base:int -> sel:int array -> n:int -> unit;
  bvalue : unit -> Value.t;
  bpartial : unit -> Value.t;
}

let batch_factory (m : Monoid.t) ~(seek : int -> unit) ~(scalar : Exprc.compiled)
    ~(batch : Exprc.bcompiled option) : (unit -> binstance) option =
  let scalar_fallback () =
    (* per-lane seek + scalar step: correct for every primitive combo the
       vector cases below don't cover (boxed, nullable, date exprs) *)
    let mk = factory m scalar in
    fun () ->
      let inst = mk () in
      {
        bstep =
          (fun ~base ~sel ~n ->
            for i = 0 to n - 1 do
              seek (base + sel.(i));
              inst.step ()
            done);
        bvalue = inst.value;
        bpartial = inst.partial;
      }
  in
  match m, batch with
  | Monoid.Collection _, _ -> None
  | Monoid.Primitive Monoid.Count, _ ->
    Some
      (fun () ->
        let n_acc = ref 0 in
        let value () = Value.Int !n_acc in
        {
          bstep = (fun ~base:_ ~sel:_ ~n -> n_acc := !n_acc + n);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Sum, Some (Exprc.B_int (buf, k)) ->
    Some
      (fun () ->
        let s = ref 0 in
        let value () = Value.Int !s in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                s := !s + buf.(sel.(i))
              done);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Sum, Some (Exprc.B_float (buf, k)) ->
    Some
      (fun () ->
        let s = ref 0. in
        let value () = Value.Float !s in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                s := !s +. buf.(sel.(i))
              done);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Max, Some (Exprc.B_int (buf, k)) ->
    Some
      (fun () ->
        let best = ref min_int and seen = ref false in
        let value () = if !seen then Value.Int !best else Value.Null in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                let v = buf.(sel.(i)) in
                if v > !best then best := v
              done;
              if n > 0 then seen := true);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Min, Some (Exprc.B_int (buf, k)) ->
    Some
      (fun () ->
        let best = ref max_int and seen = ref false in
        let value () = if !seen then Value.Int !best else Value.Null in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                let v = buf.(sel.(i)) in
                if v < !best then best := v
              done;
              if n > 0 then seen := true);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Max, Some (Exprc.B_float (buf, k)) ->
    Some
      (fun () ->
        let best = ref neg_infinity and seen = ref false in
        let value () = if !seen then Value.Float !best else Value.Null in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                let v = buf.(sel.(i)) in
                if v > !best then best := v
              done;
              if n > 0 then seen := true);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Min, Some (Exprc.B_float (buf, k)) ->
    Some
      (fun () ->
        let best = ref infinity and seen = ref false in
        let value () = if !seen then Value.Float !best else Value.Null in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                let v = buf.(sel.(i)) in
                if v < !best then best := v
              done;
              if n > 0 then seen := true);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Avg, Some (Exprc.B_int (buf, k)) ->
    Some
      (fun () ->
        let s = ref 0. and cnt = ref 0 in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                s := !s +. float_of_int buf.(sel.(i))
              done;
              cnt := !cnt + n);
          bvalue =
            (fun () ->
              if !cnt = 0 then Value.Null else Value.Float (!s /. float_of_int !cnt));
          bpartial = avg_partial s cnt;
        })
  | Monoid.Primitive Monoid.Avg, Some (Exprc.B_float (buf, k)) ->
    Some
      (fun () ->
        let s = ref 0. and cnt = ref 0 in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                s := !s +. buf.(sel.(i))
              done;
              cnt := !cnt + n);
          bvalue =
            (fun () ->
              if !cnt = 0 then Value.Null else Value.Float (!s /. float_of_int !cnt));
          bpartial = avg_partial s cnt;
        })
  | Monoid.Primitive Monoid.All, Some (Exprc.B_bool (buf, k)) ->
    Some
      (fun () ->
        let b = ref true in
        let value () = Value.Bool !b in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                b := !b && buf.(sel.(i))
              done);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive Monoid.Any, Some (Exprc.B_bool (buf, k)) ->
    Some
      (fun () ->
        let b = ref false in
        let value () = Value.Bool !b in
        {
          bstep =
            (fun ~base ~sel ~n ->
              k ~base ~sel ~n;
              for i = 0 to n - 1 do
                b := !b || buf.(sel.(i))
              done);
          bvalue = value;
          bpartial = value;
        })
  | Monoid.Primitive _, _ -> Some (scalar_fallback ())

let merge (m : Monoid.t) (a : Value.t) (b : Value.t) : Value.t =
  match m with
  | Monoid.Primitive Monoid.Count ->
    (* the generic fold-both-partials trick would count the partials
       themselves; Count partials add *)
    Value.Int (Value.to_int a + Value.to_int b)
  | Monoid.Primitive Monoid.Avg -> (
    match
      ( Value.field_opt a "sum", Value.field_opt a "n",
        Value.field_opt b "sum", Value.field_opt b "n" )
    with
    | Some (Value.Float sa), Some (Value.Int na), Some (Value.Float sb), Some (Value.Int nb)
      ->
      Value.record [ ("sum", Value.Float (sa +. sb)); ("n", Value.Int (na + nb)) ]
    | _ -> Perror.type_error "malformed Avg partial: %a / %a" Value.pp a Value.pp b)
  | Monoid.Primitive prim ->
    (* associative-commutative monoids merge by folding both partials into a
       fresh accumulator; Null partials (empty Min/Max) are skipped by
       acc_step *)
    let acc = Monoid.acc_create prim in
    Monoid.acc_step acc a;
    Monoid.acc_step acc b;
    Monoid.acc_value acc
  | Monoid.Collection _ ->
    Perror.unsupported "collection monoids have no mergeable partial aggregate"

let finalize (m : Monoid.t) (v : Value.t) : Value.t =
  match m with
  | Monoid.Primitive Monoid.Avg -> (
    match Value.field_opt v "sum", Value.field_opt v "n" with
    | Some (Value.Float s), Some (Value.Int n) ->
      if n = 0 then Value.Null else Value.Float (s /. float_of_int n)
    | _ -> Perror.type_error "malformed Avg partial: %a" Value.pp v)
  | _ -> v

let mergeable ms =
  List.for_all
    (fun (m : Monoid.t) ->
      match m with Monoid.Primitive _ -> true | Monoid.Collection _ -> false)
    ms
