(** A reusable pool of worker domains for morsel-driven parallel execution.

    OCaml 5 domains are expensive to spawn relative to a small query, so the
    pool keeps workers alive between runs, parked on a condition variable.
    One pool per process; parallel runs are serialized against each other
    (the engine parallelizes {e within} one query). *)

(** [run ~domains f] runs [f 0 .. f (domains - 1)] concurrently — [f 0] on
    the calling domain, the rest on pooled worker domains — and returns when
    all are done. [domains <= 1] degenerates to [f 0] with no locking. If
    any [f k] raises, the first exception is re-raised after all workers
    finish. *)
val run : domains:int -> (int -> unit) -> unit

(** Stop and join all pooled domains (also installed as an [at_exit] hook;
    tests may call it directly). The pool respawns on the next [run]. *)
val shutdown : unit -> unit

(** [chunk ~total ~parts k] is the half-open contiguous range [lo, hi) owned
    by worker [k] when [0, total) is split statically into [parts] chunks of
    near-equal size (the first [total mod parts] chunks get one extra row).
    A pure function of its arguments — the partitioned group-by and the
    parallel radix build rely on the assignment being independent of
    scheduling. [k >= parts] yields an empty range. *)
val chunk : total:int -> parts:int -> int -> int * int

(** The morsel dispenser: an [Atomic] cursor over a row range [0, total),
    handed out in fixed-size morsels. Workers pull the next morsel as they
    finish their current one, so load balances without work queues. *)
module Dispenser : sig
  type t

  val create : unit -> t

  (** [reset t ~total ~workers] rearms the cursor over [0, total) and picks
      a morsel size (aiming at ~64 morsels per input, clamped to
      [16, 8192]). The size does not depend on [workers]: a
      worker-independent partition keeps morsel-order merges of partial
      results bit-identical for any domain count. *)
  val reset : t -> total:int -> workers:int -> unit

  (** Number of morsels the current arming will hand out. *)
  val morsels : t -> int

  (** [next t] is [Some (morsel_index, lo, hi)] — the half-open row range
      [lo, hi) — or [None] when the input is exhausted. *)
  val next : t -> (int * int * int) option

  (** Morsels actually handed out since the last {!reset} — at most
      {!morsels}, fewer when a run is cancelled early. *)
  val dispensed : t -> int

  (** [set_skip t (Some test)] arms a zone-map skip test: a morsel whose
      range satisfies [test ~lo ~hi] (a proof that no row in [lo, hi) can
      qualify) is dropped instead of dispensed. [test] runs on whichever
      worker pulls the morsel, so it must be domain-safe. Cleared by
      {!reset}. Skipped morsels keep their index in the morsel grid — the
      per-morsel partial merge is oblivious to skipping. *)
  val set_skip : t -> (lo:int -> hi:int -> bool) option -> unit

  (** Morsels dropped by the skip test since the last {!reset}. *)
  val skipped : t -> int
end
