(** Proxy performance counters.

    The paper explains Proteus' join wins over MonetDB with hardware
    counters (dTLB misses, LLC misses, branches). Hardware counters are not
    reachable from portable OCaml, so both executors maintain software
    proxies that expose the same mechanism: per-tuple interpretation
    dispatches, boxed values materialized at pipeline breakers, and
    per-tuple control-flow branch points.

    The counters are domain-safe: each domain increments its own atomic
    cell and {!snapshot} sums across cells, so concurrent morsel workers
    lose no increments. *)

type snapshot = {
  tuples : int;          (** tuples pushed through scan loops *)
  dispatches : int;
      (** dynamic-dispatch events: one per interpreted expression node
          evaluation (Volcano) — the compiled engine resolves these at
          query-compile time *)
  materialized : int;    (** boxed values written at pipeline breakers *)
  branch_points : int;   (** per-tuple control-flow decisions taken *)
  batches : int;         (** batches emitted by batch-lane scans *)
  batch_rows : int;      (** rows entering batch-lane pipelines *)
  batch_selected : int;  (** rows surviving batch-lane filters *)
  lanes_batch : int;     (** pipeline fragments compiled to the batch lane *)
  lanes_tuple : int;     (** pipelines driven tuple-at-a-time *)
  scan_ns : int;         (** wall clock driving join-free pipelines *)
  build_ns : int;        (** wall clock in join builds (materialize + cluster) *)
  probe_ns : int;        (** wall clock driving the probe side of joins *)
  merge_ns : int;        (** wall clock merging parallel partials / replays *)
  fill_ns : int;
      (** wall clock committing segmented cache fills (blit assembly +
          arena installation) *)
  morsels : int;         (** morsels handed out by parallel fleet dispensers *)
  morsels_skipped : int;
      (** morsels/batches skipped outright because a zone map proved no row
          could satisfy a pushed-down comparison *)
  zone_checks : int;     (** zone-map range tests evaluated by scan drivers *)
  sorted_seeks : int;
      (** binary-search seeks into a sorted projection: one per range-conjunct
          resolution that narrowed the value-ordered copy to a zone bitmap *)
  probe_morsels_skipped : int;
      (** probe-side morsels/batches skipped because the join build's key
          summary (min/max, Bloom filter) proved them free of matches *)
  slot_reads : int;
      (** rows served from a pre-parsed slot column — a cache column the
          registry materialized straight from format-index spans, skipping
          numparse/span decoding (plugin-layer total, mirrored here) *)
  shards_pruned : int;
      (** shards excluded before dispatch because their digest (row count,
          min/max, Bloom filter) proved a pushed-down conjunct or
          equi-join key set empty *)
  dict_probes : int;
      (** batch-kernel evaluations that ran on dictionary codes instead of
          decoded strings (equality as code compare, LIKE per entry) *)
  errors_seen : int;     (** recoverable data errors observed (fault layer) *)
  rows_skipped : int;    (** rows dropped by the [Skip_row] policy *)
  fields_nulled : int;   (** field reads substituted by [Null_fill] *)
  shards_retried : int;
      (** shard member build retries taken out of the retry budget
          (resilience layer) *)
  shards_hedged : int;   (** speculative straggler re-dispatches launched *)
  breaker_open : int;    (** member builds skipped by an open circuit breaker *)
  shed : int;
      (** queries rejected at submit because their deadline was infeasible
          given the scheduler's queue-wait estimate *)
}

(** Coarse execution phases for wall-clock attribution. [Scan] is pipeline
    driving with no join on the pipeline; [Probe] is the probe-side drive of
    a join-bearing pipeline (its scan time counts as probe); [Build] is join
    build work; [Merge] is partial-result merging and buffered replay;
    [Fill] is cache-fill commit (segment blit assembly and installation). *)
type phase = Scan | Build | Probe | Merge | Fill

val reset : unit -> unit
val snapshot : unit -> snapshot

val add_tuples : int -> unit
val add_dispatches : int -> unit
val add_materialized : int -> unit
val add_branch_points : int -> unit
val add_batches : int -> unit
val add_batch_rows : int -> unit
val add_batch_selected : int -> unit
val add_lanes_batch : int -> unit
val add_lanes_tuple : int -> unit
val add_morsels : int -> unit
val add_morsels_skipped : int -> unit
val add_zone_checks : int -> unit
val add_sorted_seeks : int -> unit
val add_probe_morsels_skipped : int -> unit
val add_shards_pruned : int -> unit
val add_dict_probes : int -> unit
val add_phase_ns : phase -> int -> unit

(** [time ph f] runs [f ()] and adds its wall-clock duration to phase [ph].
    Phase times are cumulative across domains (two domains timing the same
    phase concurrently both contribute), and nested spans each record their
    full extent — read them as attribution, not elapsed time. *)
val time : phase -> (unit -> 'a) -> 'a

(** Average selection density of batch-lane batches
    ([batch_selected / batch_rows]; 1.0 when no batches ran). *)
val selection_density : snapshot -> float

val pp : Format.formatter -> snapshot -> unit
