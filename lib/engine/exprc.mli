(** The expression generators (Section 5.2).

    [compile] turns an algebraic expression into a closure, resolving — once
    per query — everything a tuple-at-a-time interpreter would re-decide per
    tuple: which plug-in accessor serves each path, the numeric type of each
    operator, nullability, and constant values. The result is a {e typed}
    closure whenever the operand types can be pinned down statically
    (non-nullable int/float/bool/string paths); otherwise a boxed closure
    with exactly the interpreter's semantics.

    Operators are agnostic to where a value comes from: the compile
    environment maps each bound variable to a {!repr} describing its current
    physical representation — raw-scan accessors, structural-index unnest
    spans, a boxed register, or materialized columns — and the compiled
    closure reads whichever it is ("the operators are oblivious to whether a
    value ... is not fully materialized yet"). *)

open Proteus_model
open Proteus_plugin

(** Physical representation of a bound variable at this point of the
    pipeline. *)
type repr =
  | Scan_repr of Source.t            (** live scan cursor *)
  | Unnest_repr of Source.unnest_spec  (** current nested element (span) *)
  | Boxed_repr of Value.t ref        (** boxed register *)
  | Row_repr of (string * Value.t array ref) list * int ref * bool ref
      (** materialized rows: per-path arrays, row cursor, null-row flag
          (for outer-join padding) *)
  | Param_repr of Value.t ref
      (** runtime parameter slot — re-bindable between runs without
          re-staging any closure *)

type cenv = (string, repr) Hashtbl.t

(** [param_key name] is the reserved cenv key for parameter [name] (["?"]
    prefix — SQL identifiers cannot start with it, so slots never collide
    with plan bindings). *)
val param_key : string -> string

(** [param_slot cenv name] is the registered slot for parameter [name].
    Raises [Perror.Plan_error] when no slot was registered. *)
val param_slot : cenv -> string -> Value.t ref

type compiled =
  | C_int of (unit -> int)
  | C_float of (unit -> float)
  | C_bool of (unit -> bool)
  | C_str of (unit -> string)
  | C_val of (unit -> Value.t)

val compile : cenv -> Expr.t -> compiled

(** [to_val c] is the boxed view of a compiled closure. *)
val to_val : compiled -> unit -> Value.t

(** [to_pred c] views a compiled closure as a predicate (boxed results
    follow the interpreter's null-is-false rule).
    Raises [Perror.Type_error] if the closure cannot yield booleans. *)
val to_pred : compiled -> unit -> bool

(** {1 The batch lane}

    A batch kernel evaluates its expression for a whole batch at once:
    [k ~base ~sel ~n] computes, for each of the first [n] selection-vector
    entries, the value of the expression at element [base + sel.(i)] into
    slot [sel.(i)] of the node's output buffer (batch-aligned layout: slot
    [j] always corresponds to element [base + j], so shrinking [sel] never
    moves data). Buffers are allocated once per compile at [batch_size]. *)

type bkernel = base:int -> sel:int array -> n:int -> unit

type bcompiled =
  | B_int of int array * bkernel
  | B_float of float array * bkernel
  | B_bool of bool array * bkernel
  | B_str of string array * bkernel

(** [compile_batch cenv ~batch_size e] stages [e] as a batch kernel, or
    [None] when the scalar closure is the right lane: nullable or boxed
    leaves (incl. dates), non-scan representations, conditionals, null
    tests, constructors. [And]/[Or] keep exact short-circuit semantics by
    evaluating the right operand only on the lanes the left one leaves
    undecided. *)
val compile_batch : cenv -> batch_size:int -> Expr.t -> bcompiled option

(** Per-tuple batch-fill shim over [seek] + a scalar getter — how plug-ins
    without native fills serve the batch lane. *)
val shim_fill : (int -> unit) -> (unit -> 'a) -> 'a Access.fill

(** [batch_int_fill cenv ~batch_size ~seek e] stages an integer join-key
    expression for the batch probe: a key buffer plus the kernel that fills
    it for the selected lanes (via {!compile_batch} when possible, else a
    [seek]-then-eval shim over the typed scalar closure). [None] when [e]
    is not statically an int. *)
val batch_int_fill :
  cenv -> batch_size:int -> seek:(int -> unit) -> Expr.t ->
  (int array * bkernel) option

(** [path_of e] decomposes [e] into a variable and a dotted path when it is
    a pure path expression ([x.a.b] → [Some ("x", "a.b")], [x] →
    [Some ("x", "")]). *)
val path_of : Expr.t -> (string * string) option

(** [required_paths exprs] maps each free variable to either [`Whole] (used
    bare) or [`Paths ps] (only these dotted paths are read) across all
    [exprs] — the engine's projection-pushdown analysis. *)
val required_paths : Expr.t list -> (string * [ `Whole | `Paths of string list ]) list
