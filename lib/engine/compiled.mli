(** The on-demand engine of Section 5: one specialized implementation per
    query.

    [execute] traverses the physical plan once, in post-order DFS exactly as
    the paper describes, and for every visited operator constructs the
    closures that implement it — typed accessors from the input plug-ins,
    typed expression closures from the expression generators, typed
    aggregate accumulators. The operator logic is stitched into a single
    push-based pipeline (a consumer chain), so per-tuple work contains no
    plan interpretation, no operator boundaries, and no type dispatch: the
    analogue, in OCaml closures, of the paper's LLVM code generation.

    Pipeline breakers: the hash join materializes its build (right) side
    into value vectors — the paper's radix join materializes its inputs —
    and the probe side streams; Nest materializes its groups. When a caching
    manager is wired in, (i) scans serve fields from cached binary columns
    and fill new ones as a side-effect (Section 6), and (ii) join build
    sides are cached and reused across queries keyed by their canonical
    sub-plan fingerprint ("implicit caching"). *)

open Proteus_model
open Proteus_plugin

(** Default batch size of the vectorized lane (rows per batch). *)
val default_batch_size : int

(** [execute registry plan] compiles and runs [plan]. Result shape matches
    {!Proteus_algebra.Interp.run}. Raises [Perror.*] on malformed plans.

    [batch_size] sizes the vectorized execution lane (DESIGN.md Section 8):
    scan→select→...→aggregate pipeline fragments run over fixed-size
    batches with a selection vector, spilling to the tuple-at-a-time lane
    at the first operator that is not batch-capable. [batch_size <= 0]
    disables the lane entirely (pure tuple-at-a-time execution). Both
    lanes produce bit-identical results, floats included. *)
val execute : ?batch_size:int -> Registry.t -> Proteus_algebra.Plan.t -> Value.t

(** Every expression appearing anywhere in a plan (shared by the Volcano
    executor's required-path analysis). *)
val all_exprs : Proteus_algebra.Plan.t -> Expr.t list

(** [prepare registry plan] compiles the plan and returns a thunk that can
    be executed repeatedly (each run re-scans the inputs). Used to separate
    "code generation" time from execution time, as the paper reports them
    separately (~50ms compilation per query). *)
val prepare : ?batch_size:int -> Registry.t -> Proteus_algebra.Plan.t -> unit -> Value.t

(** [prepare_par registry ~domains plan] is {!prepare} with morsel-driven
    parallel execution over [domains] OCaml domains (DESIGN.md,
    "Parallelism substitution"): the streaming segment of the plan's spine
    is compiled once per domain — each instance owning its closures and
    scan cursor — and driven by a shared morsel dispenser; per-morsel
    partial results merge on the calling domain in morsel order, so
    results are deterministic for any domain count. [domains <= 1] is
    exactly {!prepare}. Plans (or plan segments) that cannot fan out —
    cold scans that would fill cache columns, collection-monoid group-bys
    — silently fall back to the serial engine. *)
val prepare_par :
  ?batch_size:int -> Registry.t -> domains:int -> Proteus_algebra.Plan.t -> unit -> Value.t

(** [execute_par registry ~domains plan] prepares with {!prepare_par} and
    runs once. *)
val execute_par :
  ?batch_size:int -> Registry.t -> domains:int -> Proteus_algebra.Plan.t -> Value.t

(** {1 Parameterized engines (prepare once, run many)}

    A plan may contain {!Expr.Param} nodes (SQL [?] / [$name]). Preparing
    such a plan stages every closure exactly once against mutable parameter
    slots; {!bind} writes new constants into the slots and the same engine
    re-runs — no re-staging, no re-analysis. Zone-map morsel skips re-arm
    from the currently bound values on every run, and parameterized
    predicates are excluded from σ-result and join-build caching (their
    result sets change per bind). *)

type bound = {
  bd_run : unit -> Value.t;  (** run under the currently bound parameters *)
  bd_params : (string * Value.t ref) list;
      (** one slot per parameter, in plan order; unbound slots read as
          [Value.Null] (comparisons against Null are false) *)
}

(** [bind b env] writes [env]'s values into the engine's slots. Raises
    [Perror.Plan_error] on a name no slot exists for. Parameters absent
    from [env] keep their previous value. *)
val bind : bound -> (string * Value.t) list -> unit

(** {!prepare} returning the parameter slots alongside the run thunk. *)
val prepare_bound :
  ?batch_size:int -> Registry.t -> Proteus_algebra.Plan.t -> bound

(** {!prepare_par} returning the parameter slots alongside the run thunk. *)
val prepare_bound_par :
  ?batch_size:int -> Registry.t -> domains:int -> Proteus_algebra.Plan.t -> bound
