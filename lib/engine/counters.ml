type snapshot = {
  tuples : int;
  dispatches : int;
  materialized : int;
  branch_points : int;
  batches : int;
  batch_rows : int;
  batch_selected : int;
  lanes_batch : int;
  lanes_tuple : int;
  scan_ns : int;
  build_ns : int;
  probe_ns : int;
  merge_ns : int;
  fill_ns : int;
  morsels : int;
  morsels_skipped : int;
  zone_checks : int;
  sorted_seeks : int;
  probe_morsels_skipped : int;
  slot_reads : int;
  shards_pruned : int;
  dict_probes : int;
  errors_seen : int;
  rows_skipped : int;
  fields_nulled : int;
  shards_retried : int;
  shards_hedged : int;
  breaker_open : int;
  shed : int;
}

type phase = Scan | Build | Probe | Merge | Fill

(* Domain-safe counters: one atomic cell per (hashed) domain id, summed at
   snapshot time. Each worker domain lands on its own cell in the common
   case (domain ids are small sequential ints), so increments stay
   uncontended; [fetch_and_add] keeps counts exact even if two domains ever
   collide on a slot. *)
let slots = 64

type counter = int Atomic.t array

let make_counter () : counter = Array.init slots (fun _ -> Atomic.make 0)

let tuples = make_counter ()
let dispatches = make_counter ()
let materialized = make_counter ()
let branch_points = make_counter ()
let batches = make_counter ()
let batch_rows = make_counter ()
let batch_selected = make_counter ()
let lanes_batch = make_counter ()
let lanes_tuple = make_counter ()
let scan_ns = make_counter ()
let build_ns = make_counter ()
let probe_ns = make_counter ()
let merge_ns = make_counter ()
let fill_ns = make_counter ()
let morsels = make_counter ()
let morsels_skipped = make_counter ()
let zone_checks = make_counter ()
let sorted_seeks = make_counter ()
let probe_morsels_skipped = make_counter ()
let shards_pruned = make_counter ()
let dict_probes = make_counter ()

let slot () = (Domain.self () :> int) land (slots - 1)

let add (c : counter) n = ignore (Atomic.fetch_and_add c.(slot ()) n)

let total (c : counter) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

let zero (c : counter) = Array.iter (fun a -> Atomic.set a 0) c

let reset () =
  zero tuples;
  zero dispatches;
  zero materialized;
  zero branch_points;
  zero batches;
  zero batch_rows;
  zero batch_selected;
  zero lanes_batch;
  zero lanes_tuple;
  zero scan_ns;
  zero build_ns;
  zero probe_ns;
  zero merge_ns;
  zero fill_ns;
  zero morsels;
  zero morsels_skipped;
  zero zone_checks;
  zero sorted_seeks;
  zero probe_morsels_skipped;
  zero shards_pruned;
  zero dict_probes;
  Proteus_model.Fault.reset_totals ();
  Proteus_resilience.Stats.reset ();
  Proteus_plugin.Pstats.reset ()

let snapshot () =
  {
    tuples = total tuples;
    dispatches = total dispatches;
    materialized = total materialized;
    branch_points = total branch_points;
    batches = total batches;
    batch_rows = total batch_rows;
    batch_selected = total batch_selected;
    lanes_batch = total lanes_batch;
    lanes_tuple = total lanes_tuple;
    scan_ns = total scan_ns;
    build_ns = total build_ns;
    probe_ns = total probe_ns;
    merge_ns = total merge_ns;
    fill_ns = total fill_ns;
    morsels = total morsels;
    morsels_skipped = total morsels_skipped;
    zone_checks = total zone_checks;
    sorted_seeks = total sorted_seeks;
    probe_morsels_skipped = total probe_morsels_skipped;
    (* the plugin layer owns this one (slot-column routing happens at scan
       construction, below the engine) — mirrored like the fault totals *)
    slot_reads = Proteus_plugin.Pstats.slot_reads_total ();
    shards_pruned = total shards_pruned;
    dict_probes = total dict_probes;
    (* The fault layer owns these (it already accounts them atomically per
       record call); the snapshot just mirrors its totals. *)
    errors_seen = Proteus_model.Fault.errors_total ();
    rows_skipped = Proteus_model.Fault.skipped_total ();
    fields_nulled = Proteus_model.Fault.nulled_total ();
    (* likewise the resilience layer's totals *)
    shards_retried = Proteus_resilience.Stats.retries_total ();
    shards_hedged = Proteus_resilience.Stats.hedges_total ();
    breaker_open = Proteus_resilience.Stats.breaker_open_total ();
    shed = Proteus_resilience.Stats.shed_total ();
  }

let add_tuples n = add tuples n
let add_dispatches n = add dispatches n
let add_materialized n = add materialized n
let add_branch_points n = add branch_points n
let add_batches n = add batches n
let add_batch_rows n = add batch_rows n
let add_batch_selected n = add batch_selected n
let add_lanes_batch n = add lanes_batch n
let add_lanes_tuple n = add lanes_tuple n
let add_morsels n = add morsels n
let add_morsels_skipped n = add morsels_skipped n
let add_zone_checks n = add zone_checks n
let add_sorted_seeks n = add sorted_seeks n
let add_probe_morsels_skipped n = add probe_morsels_skipped n
let add_shards_pruned n = add shards_pruned n
let add_dict_probes n = add dict_probes n

let phase_counter = function
  | Scan -> scan_ns
  | Build -> build_ns
  | Probe -> probe_ns
  | Merge -> merge_ns
  | Fill -> fill_ns

let add_phase_ns ph n = add (phase_counter ph) n

(* Per-phase wall clock, cumulative across domains: a span timed on two
   domains at once contributes twice, so sums can exceed elapsed time on a
   parallel run — they answer "where did the work go", not "how long did
   the query take". Exceptions propagate with the partial span recorded. *)
let time ph f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      add_phase_ns ph (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)))
    f

let selection_density s =
  if s.batch_rows = 0 then 1.
  else float_of_int s.batch_selected /. float_of_int s.batch_rows

let ms ns = float_of_int ns /. 1e6

let pp ppf s =
  Fmt.pf ppf
    "tuples=%d dispatches=%d materialized=%d branches=%d batches=%d \
     batch-rows=%d batch-selected=%d (density %.3f) lanes: %d batch / %d tuple"
    s.tuples s.dispatches s.materialized s.branch_points s.batches s.batch_rows
    s.batch_selected (selection_density s) s.lanes_batch s.lanes_tuple;
  if s.morsels > 0 || s.morsels_skipped > 0 then
    Fmt.pf ppf " morsels=%d" s.morsels;
  if s.morsels_skipped > 0 || s.zone_checks > 0 then
    Fmt.pf ppf " zone-checks=%d morsels-skipped=%d" s.zone_checks s.morsels_skipped;
  if s.sorted_seeks > 0 then Fmt.pf ppf " sorted-seeks=%d" s.sorted_seeks;
  if s.probe_morsels_skipped > 0 then
    Fmt.pf ppf " probe-morsels-skipped=%d" s.probe_morsels_skipped;
  if s.slot_reads > 0 then Fmt.pf ppf " slot-reads=%d" s.slot_reads;
  if s.shards_pruned > 0 then Fmt.pf ppf " shards-pruned=%d" s.shards_pruned;
  if s.dict_probes > 0 then Fmt.pf ppf " dict-probes=%d" s.dict_probes;
  if s.scan_ns + s.build_ns + s.probe_ns + s.merge_ns + s.fill_ns > 0 then begin
    Fmt.pf ppf " phases[ms]: scan=%.2f build=%.2f probe=%.2f merge=%.2f"
      (ms s.scan_ns) (ms s.build_ns) (ms s.probe_ns) (ms s.merge_ns);
    if s.fill_ns > 0 then Fmt.pf ppf " fill=%.2f" (ms s.fill_ns)
  end;
  if s.errors_seen + s.rows_skipped + s.fields_nulled > 0 then
    Fmt.pf ppf " faults: errors=%d skipped=%d nulled=%d" s.errors_seen
      s.rows_skipped s.fields_nulled;
  if s.shards_retried + s.shards_hedged + s.breaker_open + s.shed > 0 then
    Fmt.pf ppf " shards-retried=%d shards-hedged=%d breaker-open=%d shed=%d"
      s.shards_retried s.shards_hedged s.breaker_open s.shed
