type snapshot = {
  tuples : int;
  dispatches : int;
  materialized : int;
  branch_points : int;
}

(* Domain-safe counters: one atomic cell per (hashed) domain id, summed at
   snapshot time. Each worker domain lands on its own cell in the common
   case (domain ids are small sequential ints), so increments stay
   uncontended; [fetch_and_add] keeps counts exact even if two domains ever
   collide on a slot. *)
let slots = 64

type counter = int Atomic.t array

let make_counter () : counter = Array.init slots (fun _ -> Atomic.make 0)

let tuples = make_counter ()
let dispatches = make_counter ()
let materialized = make_counter ()
let branch_points = make_counter ()

let slot () = (Domain.self () :> int) land (slots - 1)

let add (c : counter) n = ignore (Atomic.fetch_and_add c.(slot ()) n)

let total (c : counter) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

let zero (c : counter) = Array.iter (fun a -> Atomic.set a 0) c

let reset () =
  zero tuples;
  zero dispatches;
  zero materialized;
  zero branch_points

let snapshot () =
  {
    tuples = total tuples;
    dispatches = total dispatches;
    materialized = total materialized;
    branch_points = total branch_points;
  }

let add_tuples n = add tuples n
let add_dispatches n = add dispatches n
let add_materialized n = add materialized n
let add_branch_points n = add branch_points n

let pp ppf s =
  Fmt.pf ppf "tuples=%d dispatches=%d materialized=%d branches=%d" s.tuples
    s.dispatches s.materialized s.branch_points
