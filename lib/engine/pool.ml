(* A reusable pool of worker domains for morsel-driven execution.

   Workers are spawned lazily on the first parallel run and parked on a
   per-worker condition variable between runs, so repeated queries reuse the
   same domains (spawning is far more expensive than a small query). [run
   ~domains f] executes [f 0 .. f (domains - 1)] concurrently, with worker 0
   on the calling domain. Runs are serialized by a global lock: the engine
   parallelizes within one query, not across concurrent queries. *)

type worker = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
}

let worker_loop w () =
  let rec next () =
    Mutex.lock w.lock;
    while (match w.job with None -> true | Some _ -> false) && not w.stop do
      Condition.wait w.cond w.lock
    done;
    match w.job with
    | Some job ->
      Mutex.unlock w.lock;
      (* jobs arrive pre-wrapped by [run]; the catch-all only guards the
         worker loop itself against a raw job slipping through *)
      (try job () with _ -> ());
      Mutex.lock w.lock;
      w.job <- None;
      Condition.broadcast w.cond;
      Mutex.unlock w.lock;
      next ()
    | None -> Mutex.unlock w.lock
  in
  next ()

type pool = {
  mutable workers : worker array;
  mutable domains : unit Domain.t array;
}

let pool = { workers = [||]; domains = [||] }
let pool_lock = Mutex.create ()
let exit_hook_installed = ref false

let stop_all_locked () =
  Array.iter
    (fun w ->
      Mutex.lock w.lock;
      w.stop <- true;
      Condition.broadcast w.cond;
      Mutex.unlock w.lock)
    pool.workers;
  Array.iter Domain.join pool.domains;
  pool.workers <- [||];
  pool.domains <- [||]

(* must be called with [pool_lock] held *)
let ensure_locked n =
  let have = Array.length pool.workers in
  if have < n then begin
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      (* join every worker before process exit so the runtime shuts down
         cleanly *)
      at_exit (fun () ->
          Mutex.lock pool_lock;
          stop_all_locked ();
          Mutex.unlock pool_lock)
    end;
    let fresh =
      Array.init (n - have) (fun _ ->
          let w =
            { lock = Mutex.create (); cond = Condition.create (); job = None; stop = false }
          in
          (w, Domain.spawn (worker_loop w)))
    in
    pool.workers <- Array.append pool.workers (Array.map fst fresh);
    pool.domains <- Array.append pool.domains (Array.map snd fresh)
  end

let submit w job =
  Mutex.lock w.lock;
  w.job <- Some job;
  Condition.broadcast w.cond;
  Mutex.unlock w.lock

let await w =
  Mutex.lock w.lock;
  while match w.job with Some _ -> true | None -> false do
    Condition.wait w.cond w.lock
  done;
  Mutex.unlock w.lock

let shutdown () =
  Mutex.lock pool_lock;
  stop_all_locked ();
  Mutex.unlock pool_lock

let run ~domains f =
  if domains <= 1 then f 0
  else begin
    Mutex.lock pool_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool_lock)
      (fun () ->
        ensure_locked (domains - 1);
        let failure = Atomic.make None in
        (* The fault context is domain-local: carry the submitter's into
           every worker so budget accounting, policies and the cancellation
           token span the whole fleet, and clear it again when the job ends
           so no context outlives its query on a parked domain. *)
        let fctx = Proteus_model.Fault.get_ctx () in
        let wrap k () =
          Proteus_model.Fault.set_ctx fctx;
          (try f k
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             (* First failure wins the CAS, then trips the cancellation
                token so peers stop at their next morsel fetch instead of
                draining the dispenser. Peers' own Cancelled exceptions
                lose the CAS, so the original failure is what re-raises. *)
             if Atomic.compare_and_set failure None (Some (e, bt)) then
               Proteus_model.Fault.cancel ());
          if k > 0 then Proteus_model.Fault.set_ctx None
        in
        for k = 1 to domains - 1 do
          submit pool.workers.(k - 1) (wrap k)
        done;
        wrap 0 ();
        for k = 1 to domains - 1 do
          await pool.workers.(k - 1)
        done;
        match Atomic.get failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
  end

(* Static partitioning: worker [k] of [parts] owns the contiguous row range
   [chunk ~total ~parts k). Unlike the dispenser there is no load balancing,
   but the assignment is a pure function of (total, parts, k) — the
   partitioned group-by and the parallel radix build use it so that which
   rows a domain folds is deterministic, independent of scheduling. *)
let chunk ~total ~parts k =
  if parts <= 1 then if k = 0 then (0, total) else (total, total)
  else begin
    let base = total / parts and rem = total mod parts in
    let lo = (k * base) + min k rem in
    let len = base + if k < rem then 1 else 0 in
    (lo, lo + len)
  end

(* The morsel dispenser: an atomic cursor over [0, total), handed out in
   fixed-size chunks. Every worker pulls the next morsel when it finishes
   its current one, so faster workers naturally take more of the input. *)
module Dispenser = struct
  type t = {
    cursor : int Atomic.t;
    mutable total : int;
    mutable morsel : int;
    handed : int Atomic.t;  (* morsels dispensed since the last reset *)
    mutable skip : (lo:int -> hi:int -> bool) option;
        (* zone-map test: [true] proves the range yields no qualifying row,
           so the morsel is dropped instead of dispensed. Must be safe to
           call from any worker domain (pure reads + atomic counters). *)
    skipped : int Atomic.t;  (* morsels dropped by [skip] since last reset *)
  }

  let create () =
    {
      cursor = Atomic.make 0;
      total = 0;
      morsel = 1;
      handed = Atomic.make 0;
      skip = None;
      skipped = Atomic.make 0;
    }

  (* ~64 morsels per input bounds scheduling overhead while still smoothing
     skew; clamped so tiny inputs stay one hand-off and huge ones keep
     per-morsel buffers reasonable. The size deliberately does NOT depend
     on the worker count: per-morsel partial aggregates merge in morsel
     order, so a worker-independent partition makes merged results (float
     association included) bit-identical for any domain count. *)
  let reset t ~total ~workers:_ =
    let target = total / 64 in
    t.morsel <- max 16 (min 8192 (max 1 target));
    t.total <- total;
    Atomic.set t.handed 0;
    t.skip <- None;
    Atomic.set t.skipped 0;
    Atomic.set t.cursor 0

  let set_skip t test = t.skip <- test

  let morsels t = if t.total = 0 then 0 else (t.total + t.morsel - 1) / t.morsel

  let rec next t =
    let lo = Atomic.fetch_and_add t.cursor t.morsel in
    if lo >= t.total then None
    else begin
      let hi = min t.total (lo + t.morsel) in
      match t.skip with
      | Some test when test ~lo ~hi ->
        Atomic.incr t.skipped;
        next t
      | _ ->
        Atomic.incr t.handed;
        Some (lo / t.morsel, lo, hi)
    end

  let dispensed t = Atomic.get t.handed

  let skipped t = Atomic.get t.skipped
end
