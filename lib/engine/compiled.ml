open Proteus_model
open Proteus_plugin
module Plan = Proteus_algebra.Plan
module Fingerprint = Proteus_algebra.Fingerprint
module Zonemap = Proteus_storage.Zonemap
module Projection = Proteus_storage.Projection
module Bloom = Proteus_storage.Bloom

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Growable boxed vector for materialized join sides. *)
module Vec = struct
  type t = { mutable a : Value.t array; mutable n : int }

  let create () = { a = Array.make 64 Value.Null; n = 0 }

  let clear t = t.n <- 0

  let push t v =
    if t.n >= Array.length t.a then begin
      let bigger = Array.make (2 * t.n) Value.Null in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end;
    t.a.(t.n) <- v;
    t.n <- t.n + 1

  let to_array t = Array.sub t.a 0 t.n

  (* Bulk assembly: grow once to the announced total, then blit whole
     segments — the segments-then-blit idiom of parallel materialization. *)
  let reserve t extra =
    let need = t.n + extra in
    if need > Array.length t.a then begin
      let bigger = Array.make (max need (2 * t.n)) Value.Null in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end

  let append t (src : t) =
    reserve t src.n;
    Array.blit src.a 0 t.a t.n src.n;
    t.n <- t.n + src.n
end

(* Unboxed int counterpart of [Vec], for parallel build-side key buffers. *)
module IVec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push t v =
    if t.n >= Array.length t.a then begin
      let bigger = Array.make (2 * t.n) 0 in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end;
    t.a.(t.n) <- v;
    t.n <- t.n + 1
end

let all_exprs = Proteus_algebra.Analysis.all_exprs
let path_of = Proteus_algebra.Analysis.path_of

(* Internal fan-out for join-build work (build-side materialization,
   partitioned clustering). The caller's domain count is an explicit request
   for the probe pipeline; the build fan-out is our implementation choice,
   and fanning out wider than the hardware only buys minor-GC barrier syncs
   — so cap it at the machine's core count. [PROTEUS_PAR_BUILD=1] forces the
   requested width (differential tests exercise the partitioned paths on
   any box); [PROTEUS_PAR_BUILD=0] forces the serial build. *)
let build_fan requested =
  match Sys.getenv_opt "PROTEUS_PAR_BUILD" with
  | Some "0" -> 1
  | Some ("1" | "force") -> requested
  | _ -> if Domain.recommended_domain_count () > 1 then requested else 1

let rec plan_has_join (p : Plan.t) =
  match p with
  | Plan.Join _ -> true
  | p -> List.exists plan_has_join (Plan.children p)

(* Root pipeline drives attribute to the Scan phase only when no join sits
   on the pipeline — join-bearing pipelines split their time into Build and
   Probe instead. *)
let drive_phase has_join f = if has_join then f () else Counters.time Counters.Scan f

(* The build-side state a spine join publishes for probe-only worker
   pipelines: materialized payload columns plus the finished lookup
   structure, all read-only during the probe phase. *)
type shared_join = {
  sj_cols : (string * (string * Value.t array ref) list) list;
      (** per build-side binding: (path, materialized column) pairs *)
  sj_rows : int ref;
  sj_radix : Radix.t option ref;
  sj_table : int list VH.t;
  sj_mode : [ `Radix | `Boxed | `Loop ];
  sj_kind : Plan.join_kind;
  sj_residual : Expr.t;
  sj_left_key : Expr.t option;
  sj_ikeys : int array ref;
      (** alias of the build's int-key array, trimmed exact (meaningful when
          [sj_mode] is [`Radix]) — shard pruning derives per-run key
          ranges/sets from it after the build phase *)
}

(* Per-pipeline-instance parallel state. Worker 0 is the template: it
   compiles build sides and publishes [shared_join]s; workers > 0 compile
   probe-only spines against them. [par_spine] is true only on the path
   from the root to the driving (left-most) scan — everything off that
   path compiles and runs exactly as in the serial engine. *)
type par = {
  par_worker : int;
  par_spine : bool;
  par_domains : int;  (** fleet width, for nested (build-side) fan-out *)
  par_disp : Pool.Dispenser.t;
  par_morsel : int ref;  (** index of the morsel this worker is scanning *)
  par_static : (int * int) option;
      (** static-partition scheduling: this instance scans exactly this row
          range instead of pulling morsels from the dispenser — used where a
          worker keeps cross-morsel state (partitioned group-by), so the
          worker-to-rows mapping is deterministic at a fixed domain count *)
  par_joins : (int, shared_join) Hashtbl.t;
  par_join_ctr : int ref;  (** spine joins seen so far by this instance *)
  par_builds : (unit -> unit) list ref;
      (** build phases the template registers; run serially before fan-out *)
  par_select : (Cache_iface.packed * Expr.t option) option;
      (** pre-resolved sigma-cache decision for the driving select-scan *)
  par_fill : Registry.fill_session option;
      (** shared segmented-fill session of the driving scan (cold parallel
          run): every worker's view fills per-morsel segments into it; the
          fleet driver arms it before the run and commits (or releases) it
          after — see [Registry.fill_session] *)
}

type ctx = {
  reg : Registry.t;
  cenv : Exprc.cenv;
  slots : (string * Value.t ref) list;
      (** the engine's parameter slots — shared by every cenv this compile
          creates (nested fleet builds included), so one rebind reaches all
          staged closures *)
  required : (string * [ `Whole | `Paths of string list ]) list;
  par : par option;
  batch : int option;
      (** batch-lane size for scan→select→...→aggregate fragments;
          [None] = tuple lane only *)
  sel_memo : (string, (Cache_iface.packed * Expr.t option) option) Hashtbl.t;
      (** per-prepare memo of sigma-cache lookups so a batch-lane attempt
          and a tuple-lane fallback observe a single lookup (the cache's
          stat counters tick once per query, as before) *)
  splice : (Plan.t * (unit -> (unit -> unit) -> unit -> unit)) option;
      (** parallelism substitution: when the serial compile reaches this
          exact plan node, the provided maker supplies its producer (a
          parallel fleet behind a serial replay) instead of compiling it *)
}

(* Parameter slots: one shared [Value.t ref] per parameter name, registered
   into every compilation environment the engine creates (serial,
   per-worker fleet instances, splice consumers) so a single rebind re-arms
   them all — the compiled closures read the slot at evaluation time. *)
let new_cenv (slots : (string * Value.t ref) list) : Exprc.cenv =
  let cenv : Exprc.cenv = Hashtbl.create 16 in
  List.iter
    (fun (p, r) -> Hashtbl.replace cenv (Exprc.param_key p) (Exprc.Param_repr r))
    slots;
  cenv

let par_spine ctx = match ctx.par with Some p -> p.par_spine | None -> false

let off_spine ctx =
  match ctx.par with
  | Some p when p.par_spine -> { ctx with par = Some { p with par_spine = false } }
  | _ -> ctx

(* The morsel loop replacing the full scan loop on a parallel spine: pull
   the next row range from the shared dispenser until the input is dry. *)
let par_runner (p : par) run_range consumer () =
  let on_tuple () =
    Counters.add_tuples 1;
    consumer ()
  in
  match p.par_static with
  | Some (lo, hi) ->
    if hi > lo then begin
      Fault.check_cancel ();
      (* static chunks are handed out in worker order, so the worker index
         keys the per-morsel error cell deterministically *)
      Fault.set_morsel p.par_worker;
      run_range ~lo ~hi ~on_tuple
    end
  | None ->
    let rec loop () =
      match Pool.Dispenser.next p.par_disp with
      | None -> ()
      | Some (m, lo, hi) ->
        Fault.check_cancel ();
        p.par_morsel := m;
        Fault.set_morsel m;
        run_range ~lo ~hi ~on_tuple;
        loop ()
    in
    loop ()

let subset vars bound = List.for_all (fun v -> List.mem v bound) vars

(* Find an equi-join conjunct splitting cleanly across the two sides. *)
let extract_equi pred left_bound right_bound =
  List.find_map
    (fun c ->
      match (c : Expr.t) with
      | Expr.Binop (Expr.Eq, l, r) ->
        let fl = Expr.free_vars l and fr = Expr.free_vars r in
        if subset fl left_bound && subset fr right_bound then Some (l, r)
        else if subset fl right_bound && subset fr left_bound then Some (r, l)
        else None
      | _ -> None)
    (Expr.conjuncts pred)

(* The payload a join materializes for its build side: one boxed vector per
   (binding, path) the ancestors read. *)
type payload_slot = {
  ps_binding : string;
  ps_path : string;  (* "" = whole record *)
  ps_get : unit -> Value.t;   (* compiled against the live build pipeline *)
  ps_vec : Vec.t;
  ps_arr : Value.t array ref; (* swapped in after materialization *)
  ps_packable : bool;
  ps_ty : Ptype.t option;     (* for packing to a cache column *)
}

(* What a scan binding feeds downstream: its routed paths, plus whether the
   whole record is consumed (which a skipping probe must then decode). *)
let scan_required ctx binding =
  match List.assoc_opt binding ctx.required with
  | Some (`Paths ps) -> (ps, false)
  | Some `Whole -> ([], true)
  | None -> ([], false)

(* sigma-result caching applies when the scan's required paths are all
   primitive (packable into binary columns) *)
let select_paths ctx binding =
  match List.assoc_opt binding ctx.required with
  | Some (`Paths ps) when ps <> [] -> Some ps
  | _ -> None

let select_cache_should_store ctx ~dataset ~binding ~pred =
  (* never materialize a σ-result under a parameterized predicate: the
     stored rows would be valid only for the values bound at fill time *)
  (not (Expr.has_param pred))
  && (Registry.cache ctx.reg).Cache_iface.should_cache_select ~dataset
  &&
  match select_paths ctx binding with
  | None -> false
  | Some paths -> (
    match Proteus_catalog.Catalog.find_opt (Registry.catalog ctx.reg) dataset with
    | Some d ->
      List.for_all
        (fun p ->
          match Source.field_type d.Proteus_catalog.Dataset.element p with
          | ty -> Ptype.is_primitive (Ptype.unwrap_option ty)
          | exception Perror.Plan_error _ -> false)
        paths
    | None -> false)

(* Per-match emission at a join probe, shared by the serial and worker
   paths: position the materialized-row cursor, apply the residual, feed the
   consumer; reports whether the row qualified (for outer-join padding). *)
let make_emit ~pred_c ~(m_cur : int ref) ~(consumer : unit -> unit) : int -> bool =
  match pred_c with
  | None ->
    fun row ->
      m_cur := row;
      consumer ();
      true
  | Some pred_c ->
    fun row ->
      m_cur := row;
      Counters.add_branch_points 1;
      if pred_c () then begin
        consumer ();
        true
      end
      else false

(* The probe-side consumer of a join, over the (finished) build state:
   radix index for unboxed int keys, boxed table otherwise, nested loop
   when no equi key exists. *)
let join_probe ~(kind : Plan.join_kind) ~mode ~left_key ~(rows : int ref)
    ~(radix : Radix.t option ref) ~(table : int list VH.t) ~(null_row : bool ref)
    ~(emit : int -> bool) ~(consumer : unit -> unit) : unit -> unit =
  let pad matched =
    if kind = Plan.Left_outer && not matched then begin
      null_row := true;
      consumer ();
      null_row := false
    end
  in
  match mode, left_key with
  | `Radix, Some (Exprc.C_int lg) ->
    (* both sides integer-typed: radix probe, no boxing per tuple *)
    fun () ->
      let k = lg () in
      let matched = ref false in
      (match !radix with
      | Some r -> Radix.iter r k ~f:(fun row -> if emit row then matched := true)
      | None -> ());
      pad !matched
  | `Boxed, Some kc ->
    let kv = Exprc.to_val kc in
    fun () ->
      let k = kv () in
      let matched = ref false in
      (match k with
      | Value.Null -> ()
      | k -> (
        match VH.find_opt table k with
        | Some rows -> List.iter (fun r -> if emit r then matched := true) rows
        | None -> ()));
      pad !matched
  | `Loop, _ ->
    (* nested-loop fallback *)
    fun () ->
      let n = !rows in
      let matched = ref false in
      for row = 0 to n - 1 do
        if emit row then matched := true
      done;
      pad !matched
  | (`Radix | `Boxed), _ ->
    Perror.plan_error "join probe: key representation mismatch across pipeline instances"

(* The vectorized probe: the key kernel has already filled [kbuf] for the
   surviving lanes; each lane probes the radix index directly. The scan
   cursor seeks to a lane only when it actually matches (or pads), so
   non-matching lanes cost one array read and one index lookup — no cursor
   movement, no spill into the tuple lane. *)
let batch_probe_sink ~(kind : Plan.join_kind) ~(radix : Radix.t option ref)
    ~(kbuf : int array) ~(seek : int -> unit) ~(null_row : bool ref)
    ~(emit : int -> bool) ~(consumer : unit -> unit) :
    base:int -> sel:int array -> n:int -> unit =
 fun ~base ~sel ~n ->
  let r = !radix in
  for i = 0 to n - 1 do
    let j = sel.(i) in
    let matched = ref false in
    let seeked = ref false in
    (match r with
    | Some r ->
      Radix.iter r
        kbuf.(j)
        ~f:(fun row ->
          if not !seeked then begin
            seeked := true;
            seek (base + j)
          end;
          if emit row then matched := true)
    | None -> ());
    if kind = Plan.Left_outer && not !matched then begin
      if not !seeked then seek (base + j);
      null_row := true;
      consumer ();
      null_row := false
    end
  done

(* ------------------------------------------------------------------ *)
(* The batch lane (DESIGN.md Section 8).

   A pipeline fragment of shape Select* over Scan compiles to batch form:
   the scan emits fixed-size batches and every Select becomes a filter
   that compacts a selection vector in place — data never moves, only the
   selection shrinks. The fragment's consumer is either a batch sink
   (array-level aggregate loops at a Reduce root) or a spill boundary that
   seeks the cursor to each surviving lane and resumes the tuple-at-a-time
   consumer chain: the first operator that is not batch-capable (join,
   unnest, group-by, sort, ...) sees exactly the serial tuple protocol.
   The lane is chosen here, once, at engine-generation time. *)

let default_batch_size = 1024

let lookup_select_memo ctx ~dataset ~binding ~pred ~paths =
  match Hashtbl.find_opt ctx.sel_memo binding with
  | Some r -> r
  | None ->
    let r =
      (* a parameterized predicate selects a different result set on every
         bind: its σ-result must never be served from (or key) the cache *)
      if Expr.has_param pred then None
      else
        (Registry.cache ctx.reg).Cache_iface.lookup_select ~dataset ~binding ~pred
          ~paths
    in
    Hashtbl.replace ctx.sel_memo binding r;
    r

(* ------------------------------------------------------------------ *)
(* Shard pruning (scatter-gather over Registry shard sets). A sharded
   driving scan carries a [shard_state]: the layout (member offsets/row
   counts in concat order) plus the armed conjunct tests. Arming happens
   once per run — after the build phases, so equi-join build keys are
   known — and marks shards whose per-(member, path) digests prove every
   pushed-down conjunct (or the join-key membership) unsatisfiable; the
   morsel/batch skip test then drops any range lying entirely inside
   pruned shards. Counted in [Counters.shards_pruned]. *)

type shard_test =
  | St_cmp of Zonemap.test     (* binding.path op numeric-const *)
  | St_eq_str of string        (* binding.path = string-const (Bloom) *)
  | St_in_set of int array     (* distinct build-side int keys (small) *)
  | St_range of int * int      (* build-side int-key bounds [lo, hi] *)
  | St_none                    (* empty Inner build side: nothing matches *)

type shard_state = {
  ss_reg : Registry.t;
  ss_binding : string;
  ss_layout : Registry.shard_info array;
  mutable ss_tests : (string * (unit -> shard_test option)) list;
      (* (path, arm): constants pre-resolve, parameters re-read their slot *)
  ss_pruned : bool array;  (* per shard, reset at every arm *)
}

(* One filter: compacts the first [n] entries of [sel] in place against the
   elements at [base + sel.(i)]; returns the surviving count. *)
type bfilter = base:int -> sel:int array -> n:int -> int

(* One plan node's worth of filtering. Selects count a branch point per
   input lane (the tuple lane counts one per tuple reaching the node);
   embedded Reduce predicates do not, as in the tuple lane. *)
type bnode = { bn_branch : bool; bn_filters : bfilter list }

(* A batch-compiled fragment: the driving source (its cursor serves spill
   seeks and shim fills), the two batch drivers, and the filter nodes in
   scan-to-root order. *)
type bfrag = {
  bf_src : Source.t;
  bf_run : batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  bf_run_range :
    lo:int -> hi:int -> batch:int -> on_batch:(base:int -> len:int -> unit) -> unit;
  bf_nodes : bnode list;
  bf_probe : (unit -> unit) option;
      (* Skip_row commit test of the driving scan (None: infallible source) *)
  bf_fill : (base:int -> sel:int array -> n:int -> unit) option;
      (* cold-run cache fill: one segment per batch, filled on the
         probe-surviving selection before query filters narrow it *)
  bf_session : Registry.fill_session option;
      (* Some only when THIS driver owns the session lifecycle (serial batch
         lane); on a parallel spine the fleet driver arms/commits instead *)
  bf_dataset : string;  (* for fault attribution *)
  bf_skip : (lo:int -> hi:int -> bool) option;
      (* zone-map batch skip of the driving scan (never built on a filling
         fragment) *)
  bf_zone : (string * string) option;
      (* (dataset, binding) when the source is the raw dataset scan — the
         only row space zone maps describe; None for σ-packed sources *)
  bf_shard : shard_state option;
      (* shard pruning state of a serial drive over a shard set (the
         parallel spine prunes at the fleet dispenser instead); Select
         compilation appends conjunct tests, the driver arms per run *)
  mutable bf_joins : (int, shared_join) Hashtbl.t option;
      (* set by a serial hash join probing this fragment: the build's
         materialized key state, so the serial driver can arm shard
         pruning and the join-side morsel/batch skip after the build runs
         (the parallel spine arms at the fleet dispenser instead) *)
}

(* Compile one predicate into per-conjunct filters: a vectorized kernel
   plus compaction when the conjunct batch-compiles to the bool lane,
   otherwise a seek-per-lane scalar fallback. Splitting per conjunct lets
   one non-vectorizable conjunct fall back alone. *)
let bfilter_node ctx ~bs ~(src : Source.t) ~branch pred : bnode =
  let filter c : bfilter =
    match Exprc.compile_batch ctx.cenv ~batch_size:bs c with
    | Some (Exprc.B_bool (buf, k)) ->
      fun ~base ~sel ~n ->
        k ~base ~sel ~n;
        let m = ref 0 in
        for i = 0 to n - 1 do
          let j = sel.(i) in
          if buf.(j) then begin
            sel.(!m) <- j;
            incr m
          end
        done;
        !m
    | Some _ | None ->
      let pc = Exprc.to_pred (Exprc.compile ctx.cenv c) in
      let seek = src.Source.seek in
      fun ~base ~sel ~n ->
        let m = ref 0 in
        for i = 0 to n - 1 do
          let j = sel.(i) in
          seek (base + j);
          if pc () then begin
            sel.(!m) <- j;
            incr m
          end
        done;
        !m
  in
  { bn_branch = branch; bn_filters = List.map filter (Expr.conjuncts pred) }

let apply_bnodes nodes ~base ~(sel : int array) n0 =
  let n = ref n0 in
  List.iter
    (fun node ->
      if node.bn_branch && !n > 0 then Counters.add_branch_points !n;
      List.iter
        (fun (f : bfilter) -> if !n > 0 then n := f ~base ~sel ~n:!n)
        node.bn_filters)
    nodes;
  !n

(* Lane bookkeeping ticks once per pipeline, not once per worker instance. *)
let count_lane ctx add =
  match ctx.par with Some p when p.par_worker > 0 -> () | _ -> add 1

(* ------------------------------------------------------------------ *)
(* Zone-map morsel skipping (workload-adaptive promotion). A pushed-down
   conjunct of shape [binding.path op const] over the driving scan tests
   against the per-zone min/max of a promoted cached column: a morsel whose
   zones prove the conjunct unsatisfiable cannot contribute a row anywhere
   downstream (conjunction semantics), so the dispenser drops it without
   touching the data. Soundness matches [Expr.cmp]: comparisons involving
   Null are false (an all-null zone never matches anything) and int/float
   cross-comparisons go through float conversion — exactly the bounds
   arithmetic of [Zonemap.may_match_range]. *)

let zone_op = function
  | Expr.Eq -> Some Zonemap.Eq
  | Expr.Lt -> Some Zonemap.Lt
  | Expr.Le -> Some Zonemap.Le
  | Expr.Gt -> Some Zonemap.Gt
  | Expr.Ge -> Some Zonemap.Ge
  | _ -> None

let zone_test op (v : Value.t) : Zonemap.test option =
  match zone_op op, v with
  | Some o, Value.Int i -> Some (Zonemap.T_int (o, i))
  | Some o, Value.Date d -> Some (Zonemap.T_int (o, d)) (* dates cache as int columns *)
  | Some o, Value.Float f -> Some (Zonemap.T_float (o, f))
  | Some o, Value.String s ->
    (* dictionary-promoted string columns carry per-zone lexicographic
       bounds; numeric zones answer "maybe" to a string test *)
    Some (Zonemap.T_str (o, s))
  | _ -> None

let zone_flip = function
  | Expr.Lt -> Expr.Gt
  | Expr.Gt -> Expr.Lt
  | Expr.Le -> Expr.Ge
  | Expr.Ge -> Expr.Le
  | op -> op

(* The zone-testable conjuncts of [pred]: [(path, arm)] for every conjunct
   of shape [binding.path op const] or [binding.path op ?param] (either
   operand order). The arm thunk produces the test at skip time: constants
   pre-resolve once, parameter conjuncts re-read their slot so the skip
   re-arms on every execution of the compiled engine with the currently
   bound value (a slot holding a non-orderable value yields no test, hence
   no skip — sound). *)
let zone_conjuncts cenv ~binding pred =
  List.filter_map
    (fun c ->
      match c with
      | Expr.Binop (op, l, r) -> (
        let testable lhs rhs op =
          match path_of lhs, rhs with
          | Some (v, path), Expr.Const value when String.equal v binding && path <> ""
            ->
            Option.map
              (fun t ->
                let fixed = Some t in
                (path, fun () -> fixed))
              (zone_test op value)
          | Some (v, path), Expr.Param p
            when String.equal v binding && path <> "" && zone_op op <> None ->
            let slot = Exprc.param_slot cenv p in
            Some (path, fun () -> zone_test op !slot)
          | _ -> None
        in
        match testable l r op with
        | Some _ as hit -> hit
        | None -> testable r l (zone_flip op))
      | _ -> None)
    (Expr.conjuncts pred)

(* Conjuncts that pin [binding.path] against a constant or a parameter —
   the promotion signal. Wider than [zone_conjuncts]: string equality and
   LIKE also mark a column selective (that is how never-cached string
   columns earn their dictionary promotion), and parameter slots count: a
   parameterized predicate is still a selective access pattern however it
   gets bound. *)
let selective_paths ~binding pred =
  let paths =
    List.filter_map
      (fun c ->
        match c with
        | Expr.Binop
            ( (Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Like),
              l,
              r ) -> (
          match path_of l, r with
          | Some (v, path), (Expr.Const _ | Expr.Param _)
            when String.equal v binding && path <> "" ->
            Some path
          | _ -> (
            match l, path_of r with
            | (Expr.Const _ | Expr.Param _), Some (v, path)
              when String.equal v binding && path <> "" ->
              Some path
            | _ -> None))
        | _ -> None)
      (Expr.conjuncts pred)
  in
  List.sort_uniq String.compare paths

(* The subset of selective paths pinned by a RANGE comparison (not mere
   equality): the signal that a sorted projection — which turns range
   conjuncts into contiguous sorted-position bands — would pay off. *)
let ranged_paths ~binding pred =
  let paths =
    List.filter_map
      (fun c ->
        match c with
        | Expr.Binop ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), l, r) -> (
          match path_of l, r with
          | Some (v, path), (Expr.Const _ | Expr.Param _)
            when String.equal v binding && path <> "" ->
            Some path
          | _ -> (
            match l, path_of r with
            | (Expr.Const _ | Expr.Param _), Some (v, path)
              when String.equal v binding && path <> "" ->
              Some path
            | _ -> None))
        | _ -> None)
      (Expr.conjuncts pred)
  in
  List.sort_uniq String.compare paths

(* Promotion feedback: report which columns selective comparisons touch,
   once per query compile (the template instance), like [count_lane]. *)
let note_selective ctx ~dataset ~binding pred =
  match ctx.par with
  | Some p when p.par_worker > 0 -> ()
  | _ ->
    let cache = Registry.cache ctx.reg in
    let ranged = ranged_paths ~binding pred in
    List.iter
      (fun path ->
        cache.Cache_iface.note_selective ~dataset ~path
          ~ranged:(List.mem path ranged))
      (selective_paths ~binding pred)

(* The morsel/batch skip test for a scan driving over the raw dataset:
   [true] proves [lo, hi) holds no qualifying row. Callers never build one
   for a filling scan (skipped morsels would leave holes in the OID-aligned
   fill segments), and the test stands down dynamically under a degraded
   fault policy (Skip_row / Null_fill): their per-row error tallies are part
   of the observable result, and skipping changes which faulty rows get
   probed. Under Fail_fast a skip is no different from a warm cache hit —
   raw bytes of rows that provably cannot match simply go unparsed. Safe on
   any worker domain — pure zone reads plus atomic counter ticks. *)
let zone_skip ctx ~dataset ~binding preds : (lo:int -> hi:int -> bool) option =
  let cache = Registry.cache ctx.reg in
  let conjs =
    List.concat_map (fun pred -> zone_conjuncts ctx.cenv ~binding pred) preds
  in
  let tests =
    List.filter_map
      (fun (path, arm) ->
        match cache.Cache_iface.lookup_zones ~dataset ~path with
        | Some zm -> Some (zm, arm)
        | None -> None)
      conjs
  in
  (* Sorted-projection tests, one per promoted path: the path's conjunct
     arms resolve to a test list, one binary-search seek turns it into a
     zone bitmap (memoized until the bound parameters change — workers race
     on the memo benignly: recomputation is deterministic), and the morsel
     test reads the bitmap. Where a zone map needs clustered data to skip,
     the bitmap proves zones empty on any row order. *)
  let proj_tests =
    let by_path = Hashtbl.create 4 in
    List.iter
      (fun (path, arm) ->
        let arms = try Hashtbl.find by_path path with Not_found -> [] in
        Hashtbl.replace by_path path (arm :: arms))
      conjs;
    Hashtbl.fold
      (fun path arms acc ->
        match cache.Cache_iface.lookup_projection ~dataset ~path with
        | None -> acc
        | Some pr ->
          let memo = Atomic.make None in
          let test ~lo ~hi =
            (* an arm whose parameter holds a non-orderable value yields no
               test; the remaining conjuncts still bound a sound (wider)
               band — fewer tests only marks MORE zones *)
            let ts = List.filter_map (fun arm -> arm ()) arms in
            if ts = [] then false
            else
              let bits =
                match Atomic.get memo with
                | Some (ts', bits) when ts' = ts -> bits
                | _ ->
                  Counters.add_sorted_seeks 1;
                  let bits = Projection.zones_for pr ts in
                  Atomic.set memo (Some (ts, bits));
                  bits
              in
              match bits with
              | None -> false
              | Some b ->
                Counters.add_zone_checks 1;
                not (Projection.range_may_match pr b ~lo ~hi)
          in
          test :: acc)
      by_path []
  in
  match tests, proj_tests with
  | [], [] -> None
  | _ ->
    Some
      (fun ~lo ~hi ->
        (match Fault.policy () with
        | Fault.Fail_fast -> true
        | Fault.Skip_row | Fault.Null_fill -> false)
        && (List.exists
              (fun (zm, arm) ->
                match arm () with
                | None -> false
                | Some test ->
                  Counters.add_zone_checks 1;
                  not (Zonemap.may_match_range zm ~lo ~hi test))
              tests
           || List.exists (fun t -> t ~lo ~hi) proj_tests))

let zone_skip_merge a b =
  match a, b with
  | None, s | s, None -> s
  | Some f, Some g -> Some (fun ~lo ~hi -> f ~lo ~hi || g ~lo ~hi)

(* The shard-testable conjuncts of [pred]: [zone_conjuncts] shapes plus
   string equality, which the per-shard Bloom filters can refute even
   though zone maps cannot. *)
let shard_conjuncts cenv ~binding pred =
  List.filter_map
    (fun c ->
      match c with
      | Expr.Binop (op, l, r) -> (
        let test_of op (v : Value.t) =
          match op, v with
          | Expr.Eq, Value.String s -> Some (St_eq_str s)
          | _ -> Option.map (fun t -> St_cmp t) (zone_test op v)
        in
        let testable lhs rhs op =
          match path_of lhs, rhs with
          | Some (v, path), Expr.Const value
            when String.equal v binding && path <> "" ->
            Option.map
              (fun t ->
                let fixed = Some t in
                (path, fun () -> fixed))
              (test_of op value)
          | Some (v, path), Expr.Param p
            when String.equal v binding && path <> "" && zone_op op <> None ->
            let slot = Exprc.param_slot cenv p in
            Some (path, fun () -> test_of op !slot)
          | _ -> None
        in
        match testable l r op with
        | Some _ as hit -> hit
        | None -> testable r l (zone_flip op))
      | _ -> None)
    (Expr.conjuncts pred)

(* May any row of a shard with digest [dg] satisfy [test]? Soundness
   mirrors [Expr.cmp]: Null compares false (an all-null shard matches
   nothing); a numeric constant equals only numeric values (so the
   numeric-only min/max bound equality and the Bloom filter refines it);
   ordering across kinds follows [Value.compare], so ordering tests prune
   only all-numeric shards; a data NaN folded [sd_min] to -inf at digest
   time (OCaml's compare orders NaN below everything). False here must
   mean "no row can match" — every uncertain case answers [true]. *)
let digest_may_match (dg : Registry.shard_digest) (test : shard_test) =
  let open Registry in
  if dg.sd_rows = 0 || dg.sd_nonnull = 0 then false
  else
    match test with
    | St_none -> false
    | St_cmp (Zonemap.T_str (op, s)) -> (
      (* digests keep numeric min/max only: string ordering cannot be
         refuted, string equality goes through the Bloom filter *)
      match op with
      | Zonemap.Eq ->
        (not dg.sd_keyed)
        || Proteus_storage.Bloom.mem dg.sd_bloom
             (Proteus_storage.Bloom.key_string s)
      | _ -> true)
    | St_cmp t -> (
      let op, c =
        match t with
        | Zonemap.T_int (op, c) -> (op, float_of_int c)
        | Zonemap.T_float (op, c) -> (op, c)
        | Zonemap.T_str _ -> assert false (* handled above *)
      in
      if Float.is_nan c then true
      else
        match op with
        | Zonemap.Eq ->
          dg.sd_min <= c && c <= dg.sd_max
          && (not dg.sd_keyed
             || Proteus_storage.Bloom.mem dg.sd_bloom
                  (Proteus_storage.Bloom.key_float c))
        | _ when not dg.sd_all_numeric -> true
        | Zonemap.Lt -> dg.sd_min < c
        | Zonemap.Le -> dg.sd_min <= c
        | Zonemap.Gt -> dg.sd_max > c
        | Zonemap.Ge -> dg.sd_max >= c)
    | St_eq_str s ->
      (not dg.sd_keyed)
      || Proteus_storage.Bloom.mem dg.sd_bloom (Proteus_storage.Bloom.key_string s)
    | St_range (lo, hi) ->
      dg.sd_max >= float_of_int lo && dg.sd_min <= float_of_int hi
    | St_in_set ks ->
      Array.exists
        (fun k ->
          let f = float_of_int k in
          dg.sd_min <= f && f <= dg.sd_max
          && (not dg.sd_keyed
             || Proteus_storage.Bloom.mem dg.sd_bloom
                  (Proteus_storage.Bloom.key_int k)))
        ks

let make_shard_state reg cenv ~dataset ~binding ~preds =
  match Registry.shards reg dataset with
  | Some layout when Array.length layout > 0 ->
    Some
      {
        ss_reg = reg;
        ss_binding = binding;
        ss_layout = layout;
        ss_tests =
          List.concat_map (fun p -> shard_conjuncts cenv ~binding p) preds;
        ss_pruned = Array.make (Array.length layout) false;
      }
  | _ -> None

(* Join-key tests, evaluated at arm time (after the build phase ran): for
   every Inner spine hash join whose probe key is [binding.path], the
   materialized build keys bound what a probe row must carry — a small
   distinct set probes the Bloom filters per key, a large one tests range
   disjointness. An empty Inner build side proves the whole pipeline
   empty regardless of key shape. Left-outer joins pass unmatched probe
   rows through and never prune. *)
let shard_join_tests ~binding (joins : (int, shared_join) Hashtbl.t) =
  Hashtbl.fold
    (fun _ (sj : shared_join) acc ->
      if sj.sj_kind <> Plan.Inner then acc
      else if !(sj.sj_rows) = 0 then ("", St_none) :: acc
      else
        match sj.sj_left_key, sj.sj_mode with
        | Some lk, `Radix -> (
          match path_of lk with
          | Some (v, path) when String.equal v binding && path <> "" -> (
            let ks = !(sj.sj_ikeys) in
            let n = Array.length ks in
            if n = 0 then acc
            else begin
              let lo = ref ks.(0) and hi = ref ks.(0) in
              Array.iter
                (fun k ->
                  if k < !lo then lo := k;
                  if k > !hi then hi := k)
                ks;
              let small_set =
                if n > 1024 then None
                else begin
                  let s = Array.copy ks in
                  Array.sort compare s;
                  let m = ref 1 in
                  for i = 1 to n - 1 do
                    if s.(i) <> s.(!m - 1) then begin
                      s.(!m) <- s.(i);
                      incr m
                    end
                  done;
                  if !m <= 64 then Some (Array.sub s 0 !m) else None
                end
              in
              match small_set with
              | Some s -> (path, St_in_set s) :: acc
              | None -> (path, St_range (!lo, !hi)) :: acc
            end)
          | _ -> acc)
        | _ -> acc)
    joins []

(* Arm once per run: reset the bitmap, stand down under degraded fault
   policies (their per-row error tallies are observable, exactly like the
   zone skip above), resolve the conjunct arms against currently bound
   parameters, fold in the join-key tests, and mark every shard some test
   refutes. Digests build lazily on first use (memoized per member). *)
let shard_arm (st : shard_state) ~joins =
  Array.fill st.ss_pruned 0 (Array.length st.ss_pruned) false;
  match Fault.policy () with
  | Fault.Skip_row | Fault.Null_fill -> ()
  | Fault.Fail_fast ->
    let tests =
      List.filter_map
        (fun (path, arm) -> Option.map (fun t -> (path, t)) (arm ()))
        st.ss_tests
      @
      match joins with
      | Some js -> shard_join_tests ~binding:st.ss_binding js
      | None -> []
    in
    if tests <> [] then begin
      let pruned = ref 0 in
      Array.iteri
        (fun i (sh : Registry.shard_info) ->
          if
            sh.Registry.sh_rows > 0
            (* an open breaker means the scatter will skip this member
               anyway — don't spend digest builds on it *)
            && not (Registry.breaker_blocked st.ss_reg sh.Registry.sh_member)
          then begin
            let prune =
              List.exists
                (fun (path, t) ->
                  match t with
                  | St_none -> true
                  | _ -> (
                    match
                      Registry.shard_digest st.ss_reg
                        ~member:sh.Registry.sh_member ~path
                    with
                    | None -> false
                    | Some dg ->
                      Counters.add_zone_checks 1;
                      not (digest_may_match dg t)))
                tests
            in
            if prune then begin
              st.ss_pruned.(i) <- true;
              incr pruned
            end
          end)
        st.ss_layout;
      if !pruned > 0 then Counters.add_shards_pruned !pruned
    end

(* The morsel/batch skip: [true] iff every shard overlapping [lo, hi) is
   pruned (empty shards overlap nothing). Before the first arm the bitmap
   is all-false, so the test is a no-op. *)
let shard_skip (st : shard_state) : lo:int -> hi:int -> bool =
  let layout = st.ss_layout in
  let n = Array.length layout in
  fun ~lo ~hi ->
    hi > lo
    && begin
         (* first shard whose end exceeds lo *)
         let i = ref 0 in
         let l = ref 0 and r = ref (n - 1) in
         while !l < !r do
           let mid = (!l + !r) / 2 in
           let sh = layout.(mid) in
           if sh.Registry.sh_offset + sh.Registry.sh_rows > lo then r := mid
           else l := mid + 1
         done;
         i := !l;
         let ok = ref true in
         while !ok && !i < n && layout.(!i).Registry.sh_offset < hi do
           let sh = layout.(!i) in
           if
             sh.Registry.sh_rows > 0
             && sh.Registry.sh_offset + sh.Registry.sh_rows > lo
             && not st.ss_pruned.(!i)
           then ok := false;
           incr i
         done;
         !ok
       end

(* ------------------------------------------------------------------ *)
(* Join-side pruning of probe morsels/batches. After an Inner hash-join
   build materialized its keys, a probe row whose join key misses every
   build key contributes nothing downstream — so a morsel whose promoted
   key-column metadata (sorted projection, zone map, Bloom filter over
   the build keys) proves every row a miss can skip outright, exactly
   like a refuted pushed-down conjunct. Computed at arm time (after the
   builds ran) once per run; the returned closure is safe on any worker
   domain (pure reads + counter ticks). Left-outer joins pass unmatched
   probe rows through and never prune; degraded fault policies stand the
   test down per call, like [zone_skip]. *)

(* distinct build keys when few enough to test per-key; None = use range *)
let ikeys_small_set ks =
  let n = Array.length ks in
  if n = 0 || n > 1024 then None
  else begin
    let s = Array.copy ks in
    Array.sort compare s;
    let m = ref 1 in
    for i = 1 to n - 1 do
      if s.(i) <> s.(!m - 1) then begin
        s.(!m) <- s.(i);
        incr m
      end
    done;
    if !m <= 64 then Some (Array.sub s 0 !m) else None
  end

let join_skip ctx ~dataset ~binding (joins : (int, shared_join) Hashtbl.t) :
    (lo:int -> hi:int -> bool) option =
  let cache = Registry.cache ctx.reg in
  let tests =
    Hashtbl.fold
      (fun _ (sj : shared_join) acc ->
        if sj.sj_kind <> Plan.Inner then acc
        else if !(sj.sj_rows) = 0 then
          (* empty Inner build: every probe morsel is provably empty *)
          (fun ~lo:_ ~hi:_ -> true) :: acc
        else
          match sj.sj_left_key, sj.sj_mode with
          | Some lk, `Radix -> (
            match path_of lk with
            | Some (v, path) when String.equal v binding && path <> "" -> (
              let ks = !(sj.sj_ikeys) in
              let n = Array.length ks in
              if n = 0 then acc
              else begin
                let kmin = ref ks.(0) and kmax = ref ks.(0) in
                Array.iter
                  (fun k ->
                    if k < !kmin then kmin := k;
                    if k > !kmax then kmax := k)
                  ks;
                let kmin = !kmin and kmax = !kmax in
                let small = ikeys_small_set ks in
                let proj =
                  match cache.Cache_iface.lookup_projection ~dataset ~path with
                  | None -> None
                  | Some pr -> (
                    (* seek the build keys into a zone bitmap once, here at
                       arm time: marked zones are the only ones that can
                       hold a matching probe key *)
                    let ts =
                      match small with
                      | Some s ->
                        Projection.zones_union pr
                          (Array.to_list
                             (Array.map (fun k -> Zonemap.T_int (Zonemap.Eq, k)) s))
                      | None ->
                        Projection.zones_for pr
                          [ Zonemap.T_int (Zonemap.Ge, kmin);
                            Zonemap.T_int (Zonemap.Le, kmax) ]
                    in
                    match ts with
                    | None -> None
                    | Some bits ->
                      Counters.add_sorted_seeks 1;
                      Some
                        (fun ~lo ~hi ->
                          Counters.add_zone_checks 1;
                          not (Projection.range_may_match pr bits ~lo ~hi)))
                in
                match proj with
                | Some t -> t :: acc
                | None -> (
                  match cache.Cache_iface.lookup_zones ~dataset ~path with
                  | None -> acc
                  | Some zm -> (
                    (* Bloom over the build keys refines zone ranges too
                       narrow for min/max disjointness to refute *)
                    let bloom = Bloom.create n in
                    Array.iter (fun k -> Bloom.add bloom (Bloom.key_int k)) ks;
                    match small with
                    | Some s ->
                      (fun ~lo ~hi ->
                        Counters.add_zone_checks 1;
                        not
                          (Array.exists
                             (fun k ->
                               Zonemap.may_match_range zm ~lo ~hi
                                 (Zonemap.T_int (Zonemap.Eq, k)))
                             s))
                      :: acc
                    | None ->
                      (fun ~lo ~hi ->
                        Counters.add_zone_checks 1;
                        match Zonemap.range_bounds zm ~lo ~hi with
                        | None -> false
                        | Some Zonemap.R_all_null ->
                          (* Null never equals an Inner join key *)
                          true
                        | Some (Zonemap.R_float (zlo, zhi)) ->
                          zhi < float_of_int kmin || zlo > float_of_int kmax
                        | Some (Zonemap.R_int (zlo, zhi)) ->
                          zhi < kmin || zlo > kmax
                          || (* narrow overlap: every candidate key must
                                also be Bloom-absent from the build *)
                          (let plo = max zlo kmin and phi = min zhi kmax in
                           phi - plo <= 256
                           && begin
                                let miss = ref true in
                                let v = ref plo in
                                while !miss && !v <= phi do
                                  if Bloom.mem bloom (Bloom.key_int !v) then
                                    miss := false;
                                  incr v
                                done;
                                !miss
                              end))
                      :: acc))
              end)
            | _ -> acc)
          | _ -> acc)
      joins []
  in
  match tests with
  | [] -> None
  | tests ->
    Some
      (fun ~lo ~hi ->
        (match Fault.policy () with
        | Fault.Fail_fast -> true
        | Fault.Skip_row | Fault.Null_fill -> false)
        && List.exists (fun t -> t ~lo ~hi) tests
        && begin
             Counters.add_probe_morsels_skipped 1;
             true
           end)

(* Feed the promotion signal and extend the fragment's zone skip for one
   predicate applying to the driving scan's rows — shared by Select filter
   nodes and root Reduce predicates. *)
let bfrag_zone_pred ctx (frag : bfrag) pred : bfrag =
  match frag.bf_zone with
  | None -> frag
  | Some (dataset, binding) ->
    note_selective ctx ~dataset ~binding pred;
    (* a shard state exists only on non-filling serial drives, so appending
       tests needs no fill guard of its own *)
    (match frag.bf_shard with
    | Some st ->
      st.ss_tests <- st.ss_tests @ shard_conjuncts ctx.cenv ~binding pred
    | None -> ());
    if Option.is_none frag.bf_fill && Option.is_none frag.bf_session then
      {
        frag with
        bf_skip = zone_skip_merge frag.bf_skip (zone_skip ctx ~dataset ~binding [ pred ]);
      }
    else frag

(* Drive a fragment: emit batches (morsel by morsel on a parallel spine),
   reset the selection to the identity, run the filter nodes, hand the
   surviving lanes to [sink]. *)
let bfrag_driver ctx (frag : bfrag) ~bs
    (sink : base:int -> sel:int array -> n:int -> unit) : unit -> unit =
  let sel = Array.make bs 0 in
  let seek = frag.bf_src.Source.seek in
  let work ~base ~len =
    Counters.add_tuples len;
    Counters.add_batches 1;
    Counters.add_batch_rows len;
    (* Under Skip_row, probe each lane before the identity selection is
       built: faulty rows never enter the selection vector, so the filter
       kernels and every downstream fill touch only committed lanes and the
       batch lane needs no per-kernel fault handling. *)
    let n0 =
      match frag.bf_probe with
      | Some probe when Fault.skipping () ->
        let m = ref 0 in
        for j = 0 to len - 1 do
          seek (base + j);
          match probe () with
          | () ->
            sel.(!m) <- j;
            incr m
          | exception e when Fault.recoverable e ->
            Fault.record_skip ~source:frag.bf_dataset ~row:(base + j) e
        done;
        !m
      | _ ->
        for j = 0 to len - 1 do
          sel.(j) <- j
        done;
        len
    in
    (* Cold-run fill, on the probe-surviving lanes only: query filters below
       must not narrow what the cache stores, while Skip_row compaction must
       (the recorded errors quarantine the session at commit) — exactly the
       tuple lane's fill-after-probe ordering, one segment per batch. *)
    (match frag.bf_fill with
    | Some fill -> fill ~base ~sel ~n:n0
    | None -> ());
    let n = apply_bnodes frag.bf_nodes ~base ~sel n0 in
    Counters.add_batch_selected n;
    if n > 0 then sink ~base ~sel ~n
  in
  (* Zone skip at batch granularity: finer than the dispenser's morsel test
     (a batch inside a provably-empty zone drops even when its morsel
     survived), and the only skip the serial batch lane gets. *)
  let jskip = ref None in
  let on_batch ~base ~len =
    Fault.check_cancel ();
    let skip =
      (match frag.bf_skip with
      | Some test -> test ~lo:base ~hi:(base + len)
      | None -> false)
      || (match !jskip with
         | Some test -> test ~lo:base ~hi:(base + len)
         | None -> false)
    in
    if skip then Counters.add_morsels_skipped 1 else work ~base ~len
  in
  match ctx.par with
  | Some p when p.par_spine -> (
    match p.par_static with
    | Some (lo, hi) ->
      fun () ->
        if hi > lo then begin
          Fault.set_morsel p.par_worker;
          frag.bf_run_range ~lo ~hi ~batch:bs ~on_batch
        end
    | None ->
      fun () ->
        let rec loop () =
          match Pool.Dispenser.next p.par_disp with
          | None -> ()
          | Some (m, lo, hi) ->
            p.par_morsel := m;
            Fault.set_morsel m;
            frag.bf_run_range ~lo ~hi ~batch:bs ~on_batch;
            loop ()
        in
        loop ())
  | _ -> (
    (* serial drive: arm shard pruning and the join-side skip at thunk
       start, each run — a serial join's build already ran (build thunk
       precedes the probe thunk), so [bf_joins] holds its final keys *)
    let arm () =
      (match frag.bf_shard with
      | Some st -> shard_arm st ~joins:frag.bf_joins
      | None -> ());
      jskip :=
        match frag.bf_joins, frag.bf_zone with
        | Some joins, Some (dataset, binding)
          when Option.is_none frag.bf_fill && Option.is_none frag.bf_session ->
          join_skip ctx ~dataset ~binding joins
        | _ -> None
    in
    match frag.bf_session with
    | None ->
      fun () ->
        arm ();
        frag.bf_run ~batch:bs ~on_batch
    | Some s ->
      (* serial batch lane over a filling scan: this driver owns the
         session's arm/commit/release lifecycle *)
      fun () ->
        Registry.session_arm s;
        (try frag.bf_run ~batch:bs ~on_batch
         with e ->
           Registry.session_release s;
           raise e);
        Counters.time Counters.Fill (fun () -> Registry.session_commit s))

(* The spill boundary: surviving lanes re-enter the tuple lane by cursor
   seek, so every downstream closure is exactly the serial one. *)
let bfrag_spill ctx (frag : bfrag) ~bs : (unit -> unit) -> unit -> unit =
  count_lane ctx Counters.add_lanes_batch;
  let seek = frag.bf_src.Source.seek in
  fun consumer ->
    bfrag_driver ctx frag ~bs (fun ~base ~sel ~n ->
        for i = 0 to n - 1 do
          seek (base + sel.(i));
          consumer ()
        done)

(* Batch-compile a Select*-over-Scan fragment; [None] falls back to the
   tuple lane (batch disabled, store-electing sigma-cache scan,
   unsupported shape). *)
let rec compile_bfrag (ctx : ctx) (p : Plan.t) : bfrag option =
  match ctx.batch with
  | None -> None
  | Some bs -> (
    match p with
    | Plan.Scan { dataset; binding; fields = _ } ->
      let required, whole = scan_required ctx binding in
      let scan, owns =
        match ctx.par with
        | Some pp when pp.par_spine ->
          (* worker view; on a cold run it fills the fleet's shared session
             (the fleet driver owns the commit lifecycle) *)
          (Registry.scan_view ctx.reg ~whole ~dataset ~required ?session:pp.par_fill,
           false)
        | _ -> (Registry.scan ctx.reg ~whole ~dataset ~required, true)
      in
      Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr scan.Registry.sc_source);
      let shard_st =
        (* serial, non-filling drives only: a parallel spine prunes at the
           fleet dispenser, a filling scan owns a segment per batch *)
        match ctx.par with
        | Some pp when pp.par_spine -> None
        | _ -> (
          match scan.Registry.sc_fill with
          | Some _ -> None
          | None ->
            make_shard_state ctx.reg ctx.cenv ~dataset ~binding ~preds:[])
      in
      Some
        {
          bf_src = scan.Registry.sc_source;
          bf_run = scan.Registry.sc_run_batches;
          bf_run_range = scan.Registry.sc_run_range_batches;
          bf_nodes = [];
          bf_probe = scan.Registry.sc_probe;
          bf_fill = scan.Registry.sc_fill_sel;
          bf_session = (if owns then scan.Registry.sc_fill else None);
          bf_dataset = scan.Registry.sc_dataset;
          bf_skip = Option.map shard_skip shard_st;
          bf_zone = Some (dataset, binding);
          bf_shard = shard_st;
          bf_joins = None;
        }
    | Plan.Select { pred; input = Plan.Scan { dataset; binding; _ } as scan_node }
      when select_paths ctx binding <> None -> (
      let of_packed (packed : Cache_iface.packed) residual =
        let element =
          (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) dataset)
            .Proteus_catalog.Dataset.element
        in
        let src = Binary_plugin.of_columns ~element packed.Cache_iface.cols in
        Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr src);
        let nodes =
          match residual with
          | None -> []
          | Some r -> [ bfilter_node ctx ~bs ~src ~branch:true r ]
        in
        Some
          {
            bf_src = src;
            bf_run = (fun ~batch ~on_batch -> Source.run_batches src ~batch ~on_batch);
            bf_run_range =
              (fun ~lo ~hi ~batch ~on_batch ->
                Source.run_range_batches src ~lo ~hi ~batch ~on_batch);
            bf_nodes = nodes;
            (* cached σ-result columns are binary: nothing to probe or fill *)
            bf_probe = None;
            bf_fill = None;
            bf_session = None;
            bf_dataset = dataset;
            bf_skip = None;
            (* packed rows are not dataset OIDs: zone maps do not apply *)
            bf_zone = None;
            bf_shard = None;
            bf_joins = None;
          }
      in
      match ctx.par with
      | Some pp when pp.par_spine -> (
        match pp.par_select with
        | Some (packed, residual) -> of_packed packed residual
        | None -> bfrag_filter ctx ~bs (compile_bfrag ctx scan_node) pred)
      | _ -> (
        let paths = Option.get (select_paths ctx binding) in
        match lookup_select_memo ctx ~dataset ~binding ~pred ~paths with
        | Some (packed, residual) -> of_packed packed residual
        | None when select_cache_should_store ctx ~dataset ~binding ~pred ->
          (* the tuple lane materializes cache columns as it filters *)
          None
        | None -> bfrag_filter ctx ~bs (compile_bfrag ctx scan_node) pred))
    | Plan.Select { pred; input } -> bfrag_filter ctx ~bs (compile_bfrag ctx input) pred
    | _ -> None)

and bfrag_filter ctx ~bs frag pred =
  match frag with
  | None -> None
  | Some f ->
    let f = bfrag_zone_pred ctx f pred in
    Some
      {
        f with
        bf_nodes = f.bf_nodes @ [ bfilter_node ctx ~bs ~src:f.bf_src ~branch:true pred ];
      }

(* ------------------------------------------------------------------ *)
(* Fleet compilation: N pipeline instances over a shared morsel dispenser.
   Shared by the root parallel drivers (par_reduce and friends, below) and
   by the parallel join build inside [compile_join]. *)

(* What drives the fan-out: the row count the dispenser carves into
   morsels, plus the pre-resolved sigma-cache decision for a driving
   select-over-scan (resolved once so all instances agree and the cache's
   statistics tick once per query, as in the serial engine). *)
type drive = {
  dr_count : int;
  dr_select : (Cache_iface.packed * Expr.t option) option;
  dr_fill : Registry.fill_session option;
  dr_skip : (lo:int -> hi:int -> bool) option;
      (** zone-map morsel skip armed on the fleet dispenser (never together
          with [dr_fill]) *)
  dr_arm : ((int, shared_join) Hashtbl.t option -> unit) option;
      (** shard-pruning arm hook, called by the fleet driver after the
          build phases (so join-key tests see the materialized keys) and
          before any morsel is dispensed *)
  dr_join_skip :
    ((int, shared_join) Hashtbl.t -> (lo:int -> hi:int -> bool) option) option;
      (** join-side morsel-skip maker: given the run's materialized build
          state (post-build, like [dr_arm]), summarize the Inner-join keys
          probing this scan and return a skip to merge onto the dispenser *)
}

(* Walk the spine to the driving scan. [None] means this sub-plan cannot
   fan out: a breaker sits on the spine, or the driving select-scan elects a
   sigma-result store (one compacted result set cannot be assembled from
   morsel ranges without their own segment protocol — that store stays
   serial). A cache-filling scan no longer falls back: its fills ride the
   morsel spine as per-segment buffers, committed by the fleet driver. *)
(* [preds] accumulates the predicates that apply to every row the driving
   scan emits — spine Selects plus (for the Reduce drivers) the root
   predicate — so the scan can arm a zone-map morsel skip. Crossing a
   Project or Unnest drops them: those nodes can rebind names, and pushdown
   already sank scan-only conjuncts below them. *)
let rec spine_drive ?(preds = []) (actx : ctx) (p : Plan.t) : drive option =
  match p with
  | Plan.Select { pred; input = Plan.Scan { dataset; binding; _ }; _ }
    when select_paths actx binding <> None -> (
    let paths = Option.get (select_paths actx binding) in
    match lookup_select_memo actx ~dataset ~binding ~pred ~paths with
    | Some (packed, residual) ->
      Some
        {
          dr_count = packed.Cache_iface.length;
          dr_select = Some (packed, residual);
          dr_fill = None;
          (* σ-packed rows are not dataset OIDs: zones do not apply *)
          dr_skip = None;
          dr_arm = None;
          dr_join_skip = None;
        }
    | None ->
      if select_cache_should_store actx ~dataset ~binding ~pred then None
      else drive_scan actx ~dataset ~binding ~preds:(pred :: preds))
  | Plan.Scan { dataset; binding; _ } -> drive_scan actx ~dataset ~binding ~preds
  | Plan.Select { pred; input; _ } -> spine_drive ~preds:(pred :: preds) actx input
  | Plan.Project { input; _ } | Plan.Unnest { input; _ } -> spine_drive actx input
  | Plan.Join { left; _ } -> spine_drive ~preds actx left
  | Plan.Nest _ | Plan.Sort _ | Plan.Reduce _ -> None

and drive_scan actx ~dataset ~binding ~preds =
  let required, whole = scan_required actx binding in
  let scan = Registry.scan actx.reg ~whole ~dataset ~required in
  let dr_skip, dr_arm, dr_join_skip =
    (* a filling scan owns an OID-aligned segment for every morsel: never
       skip under an armed session *)
    match scan.Registry.sc_fill with
    | Some _ -> (None, None, None)
    | None ->
      let zskip = zone_skip actx ~dataset ~binding preds in
      let shard_st =
        make_shard_state actx.reg actx.cenv ~dataset ~binding ~preds
      in
      ( zone_skip_merge zskip (Option.map shard_skip shard_st),
        Option.map (fun st joins -> shard_arm st ~joins) shard_st,
        Some (fun joins -> join_skip actx ~dataset ~binding joins) )
  in
  Some
    {
      dr_count = scan.Registry.sc_count;
      dr_select = None;
      dr_fill = scan.Registry.sc_fill;
      dr_skip;
      dr_arm;
      dr_join_skip;
    }

(* Compile [domains] pipeline instances of [subplan] — worker 0 first: the
   template compiles join build sides and publishes their state for the
   probe-only instances. [finish w ctx par compiled] extracts whatever the
   caller needs from each instance. Returns the instances plus the per-run
   fleet driver: rearm the dispenser, stage the template (registering the
   run's build phases), run the builds serially, stage the workers, fan
   out. [static] pins worker [w] to the [w]-th contiguous chunk of the
   input instead of the dispenser, for drivers that keep per-worker state
   across the whole scan. *)
let compile_instances reg required ~slots ~batch ~domains ?(static = false)
    ~(drive : drive) subplan ~stage ~finish =
  let disp = Pool.Dispenser.create () in
  let builds = ref [] in
  let joins : (int, shared_join) Hashtbl.t = Hashtbl.create 4 in
  let mk w =
    let p =
      {
        par_worker = w;
        par_spine = true;
        par_domains = domains;
        par_disp = disp;
        par_morsel = ref w;
        par_static =
          (if static then Some (Pool.chunk ~total:drive.dr_count ~parts:domains w)
           else None);
        par_joins = joins;
        par_join_ctr = ref 0;
        par_builds = builds;
        par_select = drive.dr_select;
        par_fill = drive.dr_fill;
      }
    in
    let ctx =
      {
        reg;
        cenv = new_cenv slots;
        slots;
        required;
        par = Some p;
        batch;
        sel_memo = Hashtbl.create 4;
        splice = None;
      }
    in
    let compiled = stage ctx subplan in
    finish ctx p compiled
  in
  let template = mk 0 in
  let instances = Array.init domains (fun w -> if w = 0 then template else mk w) in
  let run_fleet wire =
    Pool.Dispenser.reset disp ~total:drive.dr_count ~workers:domains;
    Pool.Dispenser.set_skip disp drive.dr_skip;
    builds := [];
    (* Cold parallel run: arm the shared fill session before the fan-out so
       every worker's per-morsel segments land in a fresh run; commit them
       in row order after a clean run, release (quarantine) on any raise —
       the install-on-commit contract, now spanning the whole fleet. *)
    (match drive.dr_fill with
    | Some s -> Registry.session_arm s
    | None -> ());
    let runners = Array.make domains (fun () -> ()) in
    runners.(0) <- wire 0 instances.(0);
    List.iter (fun b -> Counters.time Counters.Build b) (List.rev !builds);
    (* shard pruning arms here: after the builds (join-key tests read the
       materialized build keys) and before the dispenser hands out any
       morsel — the pre-dispatch prune of scatter-gather execution *)
    (match drive.dr_arm with
    | Some arm -> arm (Some joins)
    | None -> ());
    (* join-side morsel skip, armed with the same post-build visibility:
       merged onto the base skip for this run only (the reset above
       re-installs the base, so no merge accumulates across runs) *)
    (match drive.dr_join_skip with
    | Some mk -> (
      match mk joins with
      | Some jskip ->
        Pool.Dispenser.set_skip disp (zone_skip_merge drive.dr_skip (Some jskip))
      | None -> ())
    | None -> ());
    for w = 1 to domains - 1 do
      runners.(w) <- wire w instances.(w)
    done;
    (match drive.dr_fill with
    | None -> Pool.run ~domains (fun w -> runners.(w) ())
    | Some s ->
      (try Pool.run ~domains (fun w -> runners.(w) ())
       with e ->
         Registry.session_release s;
         raise e);
      Counters.time Counters.Fill (fun () -> Registry.session_commit s));
    Counters.add_morsels (Pool.Dispenser.dispensed disp);
    Counters.add_morsels_skipped (Pool.Dispenser.skipped disp)
  in
  (instances, disp, run_fleet)

let rec compile (ctx : ctx) (p : Plan.t) : (unit -> unit) -> unit -> unit =
  match ctx.splice with
  | Some (target, mk) when target == p -> mk ()
  | _ -> compile_node ctx p

and compile_node (ctx : ctx) (p : Plan.t) : (unit -> unit) -> unit -> unit =
  match p with
  | Plan.Scan { dataset; binding; fields = _ } -> (
    let required, whole = scan_required ctx binding in
    match ctx.par with
    | Some p when p.par_spine ->
      (* the driving scan of a parallel pipeline: a private cursor view over
         the shared index, driven by the morsel dispenser; on a cold run the
         view also fills per-morsel cache segments into the shared session *)
      count_lane ctx Counters.add_lanes_tuple;
      let scan =
        Registry.scan_view ctx.reg ~whole ~dataset ~required ?session:p.par_fill
      in
      Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr scan.Registry.sc_source);
      par_runner p scan.Registry.sc_run_range
    | _ ->
      count_lane ctx Counters.add_lanes_tuple;
      let scan = Registry.scan ctx.reg ~whole ~dataset ~required in
      Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr scan.Registry.sc_source);
      fun consumer () ->
        scan.Registry.sc_run ~on_tuple:(fun () ->
            Counters.add_tuples 1;
            consumer ()))
  | Plan.Select { pred; input } -> (
    match compile_bfrag ctx p with
    | Some frag -> bfrag_spill ctx frag ~bs:(Option.get ctx.batch)
    | None -> (
      match input with
      | Plan.Scan { dataset; binding; _ } when select_paths ctx binding <> None ->
        compile_select_scan ctx ~pred ~dataset ~binding ~scan:input
      | _ ->
        let run_input = compile ctx input in
        let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
        fun consumer ->
          run_input (fun () ->
              Counters.add_branch_points 1;
              if pred_c () then consumer ())))
  | Plan.Project { binding; fields; input } ->
    let run_input = compile ctx input in
    let getters =
      List.map (fun (n, e) -> (n, Exprc.to_val (Exprc.compile ctx.cenv e))) fields
    in
    let reg = ref Value.Null in
    Hashtbl.replace ctx.cenv binding (Exprc.Boxed_repr reg);
    fun consumer ->
      run_input (fun () ->
          reg := Value.record (List.map (fun (n, g) -> (n, g ())) getters);
          consumer ())
  | Plan.Unnest { outer; path; binding; pred; input } -> compile_unnest ctx ~outer ~path ~binding ~pred ~input
  | Plan.Nest { keys; aggs; pred; binding; input } -> (
    if par_spine ctx then
      Perror.plan_error "Nest on a parallel spine (the driver must fall back)";
    let run_input = compile ctx input in
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    let compiled_keys = List.map (fun (n, e) -> (n, Exprc.compile ctx.cenv e)) keys in
    let factories =
      List.map
        (fun (a : Plan.agg) -> (a.agg_name, Agg.factory a.monoid (Exprc.compile ctx.cenv a.expr)))
        aggs
    in
    let group_reg = ref Value.Null in
    Hashtbl.replace ctx.cenv binding (Exprc.Boxed_repr group_reg);
    let emit consumer key_fields instances =
      let agg_fields =
        List.map2 (fun (n, _) (i : Agg.instance) -> (n, i.value ())) factories instances
      in
      group_reg := Value.record (key_fields @ agg_fields);
      consumer ()
    in
    match compiled_keys with
    | [ (kname, Exprc.C_int kget) ] ->
      (* single integer grouping key: the hash-based grouping runs over raw
         ints, no boxing per tuple *)
      fun consumer ->
        let groups : (int, Agg.instance list) Hashtbl.t = Hashtbl.create 64 in
        let order = ref [] in
        let feeder =
          run_input (fun () ->
              if pred_c () then begin
                let k = kget () in
                let instances =
                  match Hashtbl.find_opt groups k with
                  | Some instances -> instances
                  | None ->
                    let instances = List.map (fun (_, f) -> f ()) factories in
                    Hashtbl.add groups k instances;
                    order := k :: !order;
                    Counters.add_materialized 1;
                    instances
                in
                List.iter (fun (i : Agg.instance) -> i.step ()) instances
              end)
        in
        fun () ->
          Hashtbl.reset groups;
          order := [];
          feeder ();
          List.iter
            (fun k ->
              emit consumer [ (kname, Value.Int k) ] (Hashtbl.find groups k))
            (List.rev !order)
    | _ ->
      let key_getters = List.map (fun (n, c) -> (n, Exprc.to_val c)) compiled_keys in
      fun consumer ->
        let groups : (Value.t list * Agg.instance list) VH.t = VH.create 64 in
        let order = ref [] in
        let feeder =
          run_input (fun () ->
              if pred_c () then begin
                let kvs = List.map (fun (_, g) -> g ()) key_getters in
                let key = Value.Coll (Ptype.List, kvs) in
                let _, instances =
                  match VH.find_opt groups key with
                  | Some cell -> cell
                  | None ->
                    let cell = (kvs, List.map (fun (_, f) -> f ()) factories) in
                    VH.add groups key cell;
                    order := key :: !order;
                    Counters.add_materialized (List.length kvs);
                    cell
                in
                List.iter (fun (i : Agg.instance) -> i.step ()) instances
              end)
        in
        fun () ->
          VH.reset groups;
          order := [];
          feeder ();
          List.iter
            (fun key ->
              let kvs, instances = VH.find groups key in
              let key_fields = List.map2 (fun (n, _) v -> (n, v)) keys kvs in
              emit consumer key_fields instances)
            (List.rev !order))
  | Plan.Sort { keys; limit; input } ->
    if par_spine ctx then
      Perror.plan_error "Sort on a parallel spine (the driver must fall back)";
    let run_input = compile ctx input in
    let visible = Plan.bindings input in
    (* getters against the live pipeline, compiled before re-registration *)
    let getters =
      List.map (fun b -> Exprc.to_val (Exprc.compile ctx.cenv (Expr.Var b))) visible
    in
    let key_getters =
      List.map (fun (e, d) -> (Exprc.to_val (Exprc.compile ctx.cenv e), d)) keys
    in
    (* above the sort, bindings read from boxed registers *)
    let regs = List.map (fun b -> (b, ref Value.Null)) visible in
    List.iter
      (fun (b, r) -> Hashtbl.replace ctx.cenv b (Exprc.Boxed_repr r))
      regs;
    fun consumer () ->
      let rows = ref [] in
      (run_input (fun () ->
           Counters.add_materialized (List.length visible);
           rows :=
             ( List.map (fun (g, _) -> g ()) key_getters,
               List.map (fun g -> g ()) getters )
             :: !rows))
        ();
      let cmp (ka, _) (kb, _) =
        let rec go ks ds =
          match ks, ds with
          | (a, b) :: rest, (_, d) :: drest ->
            let c = Value.compare a b in
            if c <> 0 then (match (d : Plan.sort_dir) with Plan.Asc -> c | Plan.Desc -> -c)
            else go rest drest
          | _, _ -> 0
        in
        go (List.combine ka kb) keys
      in
      let sorted = List.stable_sort cmp (List.rev !rows) in
      let sorted =
        match limit with
        | None -> sorted
        | Some n -> List.filteri (fun i _ -> i < n) sorted
      in
      List.iter
        (fun (_, values) ->
          List.iter2 (fun (_, r) v -> r := v) regs values;
          consumer ())
        sorted
  | Plan.Reduce _ ->
    Perror.plan_error "Reduce below the plan root is not supported"
  | Plan.Join { kind; algo; left; right; left_key; right_key; pred } ->
    compile_join ctx ~kind ~algo ~left ~right ~left_key ~right_key ~pred

and compile_select_scan ctx ~pred ~dataset ~binding ~scan =
  note_selective ctx ~dataset ~binding pred;
  match ctx.par with
  | Some p when p.par_spine -> (
    (* the sigma-cache decision was resolved once during pre-analysis
       ([par_select]) so that N pipeline instances agree and the cache's
       stat counters tick once per query, as in the serial engine *)
    match p.par_select with
    | Some (packed, residual) -> (
      count_lane ctx Counters.add_lanes_tuple;
      let element =
        (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) dataset)
          .Proteus_catalog.Dataset.element
      in
      let src = Binary_plugin.of_columns ~element packed.Cache_iface.cols in
      Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr src);
      let run_range ~lo ~hi ~on_tuple = Source.run_range src ~lo ~hi ~on_tuple in
      match residual with
      | None -> par_runner p run_range
      | Some residual ->
        let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv residual) in
        fun consumer ->
          par_runner p run_range (fun () ->
              Counters.add_branch_points 1;
              if pred_c () then consumer ()))
    | None ->
      (* plain filter over the (morsel-driven) scan; the store-electing case
         fell back to the serial engine during pre-analysis *)
      let run_input = compile ctx scan in
      let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
      fun consumer ->
        run_input (fun () ->
            Counters.add_branch_points 1;
            if pred_c () then consumer ()))
  | _ -> compile_select_scan_serial ctx ~pred ~dataset ~binding ~scan

and compile_select_scan_serial ctx ~pred ~dataset ~binding ~scan =
  let paths = Option.get (select_paths ctx binding) in
  let cache = Registry.cache ctx.reg in
  match lookup_select_memo ctx ~dataset ~binding ~pred ~paths with
  | Some (packed, residual) -> (
    (* cache matching replaced this sigma-over-scan sub-tree with a scan of a
       materialized binary result (Section 6 "Cache Matching"); a subsuming
       match re-applies the stricter predicate as residual *)
    count_lane ctx Counters.add_lanes_tuple;
    let element =
      (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) dataset)
        .Proteus_catalog.Dataset.element
    in
    let src = Binary_plugin.of_columns ~element packed.Cache_iface.cols in
    Hashtbl.replace ctx.cenv binding (Exprc.Scan_repr src);
    match residual with
    | None ->
      fun consumer () ->
        Source.run src ~on_tuple:(fun () ->
            Counters.add_tuples 1;
            consumer ())
    | Some residual ->
      let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv residual) in
      fun consumer () ->
        Source.run src ~on_tuple:(fun () ->
            Counters.add_tuples 1;
            Counters.add_branch_points 1;
            if pred_c () then consumer ()))
  | None when select_cache_should_store ctx ~dataset ~binding ~pred ->
    (* explicit caching close to the leaves: materialize the qualifying rows'
       required fields as a side-effect and register the sigma-result *)
    let run_input = compile ctx scan in
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    let src =
      match Hashtbl.find_opt ctx.cenv binding with
      | Some (Exprc.Scan_repr src) -> src
      | _ -> Perror.plan_error "scan binding %s not registered" binding
    in
    let typed =
      List.map
        (fun p ->
          let a = src.Source.field p in
          (p, Ptype.unwrap_option a.Access.ty, a))
        paths
    in
    let bias =
      Proteus_catalog.Dataset.bias
        (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) dataset)
          .Proteus_catalog.Dataset.format
    in
    fun consumer () ->
      let builders =
        List.map
          (fun (p, ty, a) -> (p, Proteus_storage.Column.Builder.create ty, a))
          typed
      in
      let rows = ref 0 in
      (* install-on-commit: a sigma-result built while rows were being
         skipped (or that aborted mid-scan) is a partial answer — quarantine
         it instead of registering it as the cached result *)
      let e0 = Fault.errors_total () in
      let qid = "select:" ^ dataset ^ "." ^ binding in
      (match
         (run_input (fun () ->
              Counters.add_branch_points 1;
              if pred_c () then begin
                incr rows;
                List.iter
                  (fun (_, b, a) ->
                    Proteus_storage.Column.Builder.add_value b (a.Access.get_val ()))
                  builders;
                consumer ()
              end))
           ()
       with
      | () -> ()
      | exception e ->
        cache.Cache_iface.quarantine ~id:qid;
        raise e);
      if Fault.errors_total () > e0 then cache.Cache_iface.quarantine ~id:qid
      else
        cache.Cache_iface.store_select ~dataset ~binding ~pred ~paths ~bias
          {
            Cache_iface.length = !rows;
            cols =
              List.map
                (fun (p, b, _) -> (p, Proteus_storage.Column.Builder.finish b))
                builders;
          }
  | None ->
    let run_input = compile ctx scan in
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    fun consumer ->
      run_input (fun () ->
          Counters.add_branch_points 1;
          if pred_c () then consumer ())

and compile_unnest ctx ~outer ~path ~binding ~pred ~input =
  let run_input = compile ctx input in
  (* Fast path: inner unnest of a direct field of a raw scan — iterate the
     structural index's array spans without boxing elements. *)
  let fast =
    if outer then None
    else
      match Exprc.path_of path with
      | Some (v, p) when p <> "" -> (
        match Hashtbl.find_opt ctx.cenv v with
        | Some (Exprc.Scan_repr src) -> (
          match src.Source.unnest p with
          | Some spec -> Some spec
          | None -> None)
        | _ -> None)
      | _ -> None
  in
  match fast with
  | Some spec ->
    (* tell the plug-in which element fields this query reads, so it can
       fuse their extraction into the element scan (Section 5.2) *)
    (match List.assoc_opt binding ctx.required with
    | Some (`Paths ps) -> spec.Source.u_prepare ps
    | Some `Whole | None -> ());
    Hashtbl.replace ctx.cenv binding (Exprc.Unnest_repr spec);
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    fun consumer ->
      run_input (fun () ->
          spec.Source.u_iter ~on_elem:(fun () -> if pred_c () then consumer ()))
  | None ->
    let path_c = Exprc.to_val (Exprc.compile ctx.cenv path) in
    let elem = ref Value.Null in
    Hashtbl.replace ctx.cenv binding (Exprc.Boxed_repr elem);
    let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
    fun consumer ->
      run_input (fun () ->
          let elems =
            match path_c () with
            | Value.Coll (_, es) -> es
            | Value.Null -> []
            | v -> Perror.type_error "unnest over non-collection %a" Value.pp v
          in
          let matched = ref false in
          List.iter
            (fun e ->
              elem := e;
              if pred_c () then begin
                matched := true;
                consumer ()
              end)
            elems;
          if outer && not !matched then begin
            elem := Value.Null;
            consumer ()
          end)

and compile_join ctx ~kind ~algo ~left ~right ~left_key ~right_key ~pred =
  (* On a parallel spine the template instance (worker 0) compiles the build
     side and publishes its materialized state under a per-spine join index;
     worker instances compile probe-only pipelines against it. Spine joins
     are numbered in compile order, which is identical across instances
     because every instance walks the same left spine. *)
  let share =
    match ctx.par with
    | Some p when p.par_spine ->
      let idx = !(p.par_join_ctr) in
      incr p.par_join_ctr;
      Some (p, idx)
    | _ -> None
  in
  match share with
  | Some (p, idx) when p.par_worker > 0 ->
    compile_join_probe ctx (Hashtbl.find p.par_joins idx) ~left
  | _ ->
  (* the build (right) side never fans out: it runs to completion, serially,
     before probe morsels are handed out *)
  let run_right = compile (off_spine ctx) right in
  let right_bindings = Plan.bindings right in
  (* Payload: what the ancestors (and the residual predicate) read from the
     build side. The global required-paths analysis over-approximates this
     safely. *)
  let payload : payload_slot list =
    List.concat_map
      (fun b ->
        let mk path e =
          let c = Exprc.compile ctx.cenv e in
          let packable, ty =
            match c with
            | Exprc.C_int _ -> (true, Some Ptype.Int)
            | Exprc.C_float _ -> (true, Some Ptype.Float)
            | Exprc.C_bool _ -> (true, Some Ptype.Bool)
            | Exprc.C_str _ -> (true, Some Ptype.String)
            | Exprc.C_val _ -> (false, None)
          in
          {
            ps_binding = b;
            ps_path = path;
            ps_get = Exprc.to_val c;
            ps_vec = Vec.create ();
            ps_arr = ref [||];
            ps_packable = packable;
            ps_ty = ty;
          }
        in
        match List.assoc_opt b ctx.required with
        | Some `Whole | None -> [ mk "" (Expr.Var b) ]
        | Some (`Paths ps) ->
          List.map (fun p -> mk p (Expr.path b (String.split_on_char '.' p))) ps)
      right_bindings
  in
  (* Keys: prefer the optimizer's choice, else extract one here. *)
  let left_bindings_of p = Plan.bindings p in
  let equi =
    match left_key, right_key with
    | Some l, Some r -> Some (l, r)
    | _ -> extract_equi pred (left_bindings_of left) right_bindings
  in
  let use_hash = algo = Plan.Radix_hash && equi <> None in
  let right_key_get =
    match equi with
    | Some (_, rk) when use_hash -> Some (Exprc.compile ctx.cenv rk)
    | _ -> None
  in
  let key_vec = Vec.create () in
  (* Implicit-caching key: fingerprint of the build side wrapped in a
     Project listing exactly what gets materialized (key + payload). *)
  let cache_key =
    let fields =
      ("__key",
       match equi with Some (_, rk) -> rk | None -> Expr.bool true)
      :: List.mapi
           (fun i slot ->
             ( Fmt.str "c%d" i,
               if slot.ps_path = "" then Expr.Var slot.ps_binding
               else Expr.path slot.ps_binding (String.split_on_char '.' slot.ps_path) ))
           payload
    in
    "joinside:" ^ Fingerprint.plan (Plan.Project { binding = "__m"; fields; input = right })
  in
  let key_ty =
    match right_key_get with
    | Some (Exprc.C_int _) -> Some Ptype.Int
    | Some (Exprc.C_float _) -> Some Ptype.Float
    | Some (Exprc.C_str _) -> Some Ptype.String
    | Some (Exprc.C_bool _) -> Some Ptype.Bool
    | Some (Exprc.C_val _) | None -> None
  in
  let packable =
    (* a parameterized build side (or key) materializes different rows per
       bound value: its columns must never land in (or be served from) the
       implicit cache — the fingerprint key renders slots, not values *)
    use_hash
    && List.for_all (fun s -> s.ps_packable) payload
    && key_ty <> None
    && (not (Proteus_algebra.Analysis.has_params right))
    && not (match equi with Some (_, rk) -> Expr.has_param rk | None -> false)
  in
  let right_key_val = Option.map Exprc.to_val right_key_get in
  (* integer-keyed joins take the radix-clustered path (the radix hash join
     the paper adopts from [39]/[9]); other key types use a boxed table *)
  let int_keys =
    match right_key_get with Some (Exprc.C_int g) -> Some g | _ -> None
  in
  let ikey_vec = ref [||] and ikey_n = ref 0 in
  let ikey_push k =
    if !ikey_n >= Array.length !ikey_vec then begin
      let bigger = Array.make (max 64 (2 * !ikey_n)) 0 in
      Array.blit !ikey_vec 0 bigger 0 !ikey_n;
      ikey_vec := bigger
    end;
    !ikey_vec.(!ikey_n) <- k;
    ikey_n := !ikey_n + 1
  in
  let bias =
    let ranks =
      List.map
        (fun ds ->
          Proteus_catalog.Dataset.bias
            (Proteus_catalog.Catalog.find (Registry.catalog ctx.reg) ds).format)
        (Plan.datasets right)
    in
    List.fold_left
      (fun acc b -> if b > acc then b else acc)
      Proteus_storage.Memory.Arena.Bias_binary ranks
  in
  (* Re-register build-side bindings: above the join they read the
     materialized vectors. *)
  let m_cur = ref 0 in
  let null_row = ref false in
  let by_binding = Hashtbl.create 4 in
  List.iter
    (fun slot ->
      let cols = try Hashtbl.find by_binding slot.ps_binding with Not_found -> [] in
      Hashtbl.replace by_binding slot.ps_binding ((slot.ps_path, slot.ps_arr) :: cols))
    payload;
  Hashtbl.iter
    (fun b cols -> Hashtbl.replace ctx.cenv b (Exprc.Row_repr (cols, m_cur, null_row)))
    by_binding;
  (* Left side stays live (streaming probe). When the probe spine is a
     batchable Select*-over-Scan fragment and both key sides sit in the
     unboxed int lane, the probe itself joins the batch lane: the key
     kernel fills a key array for the surviving lanes and each lane probes
     the radix index directly — select→join pipelines no longer spill to
     the tuple lane at the join. *)
  let left_lane =
    let batch_try =
      match ctx.batch with
      | Some bs when int_keys <> None && use_hash -> (
        match compile_bfrag ctx left with
        | Some frag -> Some (bs, frag)
        | None -> None)
      | _ -> None
    in
    match batch_try with
    | Some (bs, frag) -> (
      let lk = match equi with Some (lk, _) -> lk | None -> assert false in
      match Exprc.compile ctx.cenv lk with
      | Exprc.C_int _ as c -> (
        match
          Exprc.batch_int_fill ctx.cenv ~batch_size:bs
            ~seek:frag.bf_src.Source.seek lk
        with
        | Some (kbuf, kfill) -> `Batch (bs, frag, kbuf, kfill, c)
        | None -> `Spill (bs, frag, c))
      | c -> `Spill (bs, frag, c))
    | None -> `Tuple (compile ctx left)
  in
  let left_key_get =
    match left_lane with
    | `Batch (_, _, _, _, c) | `Spill (_, _, c) -> Some c
    | `Tuple _ -> (
      match equi with
      | Some (lk, _) when use_hash -> Some (Exprc.compile ctx.cenv lk)
      | _ -> None)
  in
  (* Both index paths compare keys exactly (the radix index on raw ints,
     the boxed table via Value equality), so the equi conjunct needs no
     re-check: the residual predicate drops it, and joins whose other
     conjuncts were pushed below have no per-match predicate at all. *)
  let residual =
    match equi with
    | Some (lk, rk) when use_hash ->
      Expr.conjoin
        (List.filter
           (fun c ->
             match (c : Expr.t) with
             | Expr.Binop (Expr.Eq, a, b) ->
               not
                 ((Expr.equal a lk && Expr.equal b rk)
                 || (Expr.equal a rk && Expr.equal b lk))
             | _ -> true)
           (Expr.conjuncts pred))
    | _ -> pred
  in
  let pred_c =
    match residual with
    | Expr.Const (Value.Bool true) -> None
    | residual -> Some (Exprc.to_pred (Exprc.compile ctx.cenv residual))
  in
  (* the radix path needs unboxed keys on BOTH sides; a probe key compiled
     against materialized rows is boxed, so such joins use the boxed table *)
  let int_keys =
    match int_keys, left_key_get with
    | Some g, Some (Exprc.C_int _) -> Some g
    | _ -> None
  in
  (* The materialized build state lives at the compile stage so probe-only
     worker pipelines can share it read-only; the build phase rearms it at
     the start of every run. *)
  let mat_rows = ref 0 in
  (* boxed fallback table; integer keys use the radix index instead *)
  let table : int list VH.t = VH.create 1024 in
  let radix : Radix.t option ref = ref None in
  let keys = ref [||] in
  let mode =
    match left_key_get, int_keys with
    | Some (Exprc.C_int _), Some _ -> `Radix
    | Some _, _ -> `Boxed
    | None, _ -> `Loop
  in
  (* Parallel build-side materialization: on a multi-domain spine the
     template compiles a fleet of build-side instances that scan morsels
     into per-(worker, morsel) buffers; the buffers concatenate in morsel
     order — the serial scan order — into the very vectors the serial
     epilogue (cache packing, clustering) already works on. The inner
     fleet's [Pool.run] is safe because builds run before the outer
     fan-out. Falls back to the serial build when the build side cannot
     fan out (breaker on its spine, cache-filling scan) or when an
     instance's key does not land in the template's lane. *)
  let par_build =
    match ctx.par with
    | Some pp when pp.par_worker = 0 && build_fan pp.par_domains > 1 -> (
      let actx = { ctx with cenv = Hashtbl.create 16; par = None; splice = None } in
      match spine_drive actx right with
      | None -> None
      | Some bdrive ->
        let bdomains = build_fan pp.par_domains in
        let rk_opt =
          match equi with Some (_, rk) when use_hash -> Some rk | _ -> None
        in
        let slot_expr slot =
          if slot.ps_path = "" then Expr.Var slot.ps_binding
          else Expr.path slot.ps_binding (String.split_on_char '.' slot.ps_path)
        in
        let instances, bdisp, brun_fleet =
          compile_instances ctx.reg ctx.required ~slots:ctx.slots ~batch:ctx.batch
            ~domains:bdomains ~drive:bdrive right ~stage:compile
            ~finish:(fun ictx ip compiled ->
              let key_lane =
                match rk_opt with
                | None -> `None
                | Some rk -> (
                  let c = Exprc.compile ictx.cenv rk in
                  if int_keys <> None then
                    match c with Exprc.C_int g -> `Int g | _ -> `Mismatch
                  else if right_key_val <> None then `Val (Exprc.to_val c)
                  else `None)
              in
              let pays =
                Array.of_list
                  (List.map
                     (fun slot -> Exprc.to_val (Exprc.compile ictx.cenv (slot_expr slot)))
                     payload)
              in
              (compiled, key_lane, pays, ip))
        in
        let lanes_ok =
          Array.for_all
            (fun (_, kl, _, _) -> match kl with `Mismatch -> false | _ -> true)
            instances
        in
        if not lanes_ok then None
        else
          Some
            (fun () ->
              let nm = ref 0 in
              let all = Array.make bdomains [||] in
              let wire w (run_input, key_lane, pays, (ip : par)) =
                let buckets = Array.make (Pool.Dispenser.morsels bdisp) None in
                all.(w) <- buckets;
                nm := Pool.Dispenser.morsels bdisp;
                let npay = Array.length pays in
                let cur = ref (-1) in
                let cur_buf = ref (ref 0, IVec.create (), Vec.create (), [||]) in
                let consumer () =
                  let mi = !(ip.par_morsel) in
                  if !cur <> mi then begin
                    cur := mi;
                    let b =
                      ( ref 0,
                        IVec.create (),
                        Vec.create (),
                        Array.init npay (fun _ -> Vec.create ()) )
                    in
                    buckets.(mi) <- Some b;
                    cur_buf := b
                  end;
                  let count, bik, bkv, bpay = !cur_buf in
                  incr count;
                  (match key_lane with
                  | `Int g -> IVec.push bik (g ())
                  | `Val g -> Vec.push bkv (g ())
                  | `None | `Mismatch -> ());
                  Array.iteri
                    (fun i g ->
                      Vec.push bpay.(i) (g ());
                      Counters.add_materialized 1)
                    pays
                in
                run_input consumer
              in
              brun_fleet wire;
              (* concatenate per-morsel buffers in morsel order: each morsel
                 went to exactly one worker, so this is the serial row
                 order, bit for bit. A totals pass sizes the destinations
                 exactly, then every buffer lands with one [Array.blit]
                 instead of a per-row push loop — and the int-key scratch
                 comes out trimmed, so the radix build consumes it without
                 the epilogue's [Array.sub] copy. *)
              let pay_slots = Array.of_list payload in
              let tot_rows = ref 0 and tot_ik = ref 0 and tot_kv = ref 0 in
              let tot_pay = Array.make (Array.length pay_slots) 0 in
              Array.iter
                (Array.iter (function
                  | None -> ()
                  | Some (count, bik, bkv, bpay) ->
                    tot_rows := !tot_rows + !count;
                    tot_ik := !tot_ik + bik.IVec.n;
                    tot_kv := !tot_kv + bkv.Vec.n;
                    Array.iteri
                      (fun i v -> tot_pay.(i) <- tot_pay.(i) + v.Vec.n)
                      bpay))
                all;
              mat_rows := !mat_rows + !tot_rows;
              if Array.length !ikey_vec <> !ikey_n + !tot_ik then begin
                let bigger = Array.make (!ikey_n + !tot_ik) 0 in
                Array.blit !ikey_vec 0 bigger 0 !ikey_n;
                ikey_vec := bigger
              end;
              Vec.reserve key_vec !tot_kv;
              Array.iteri (fun i n -> Vec.reserve pay_slots.(i).ps_vec n) tot_pay;
              for mi = 0 to !nm - 1 do
                for w = 0 to bdomains - 1 do
                  match all.(w).(mi) with
                  | None -> ()
                  | Some (_, bik, bkv, bpay) ->
                    Array.blit bik.IVec.a 0 !ikey_vec !ikey_n bik.IVec.n;
                    ikey_n := !ikey_n + bik.IVec.n;
                    Vec.append key_vec bkv;
                    Array.iteri (fun i v -> Vec.append pay_slots.(i).ps_vec v) bpay
                done
              done))
    | _ -> None
  in
  (match share with
  | Some (p, idx) ->
    let sj_cols = Hashtbl.fold (fun b cols acc -> (b, cols) :: acc) by_binding [] in
    Hashtbl.replace p.par_joins idx
      {
        sj_cols;
        sj_rows = mat_rows;
        sj_radix = radix;
        sj_table = table;
        sj_mode = mode;
        sj_kind = kind;
        sj_residual = residual;
        sj_left_key =
          (match equi with Some (lk, _) when use_hash -> Some lk | _ -> None);
        sj_ikeys = ikey_vec;
      }
  | None -> (
    (* serial lane: publish the same build state to the probe fragment, so
       its driver (which runs after the build thunk) can arm shard pruning
       and the join-side batch skip against the materialized keys — the
       pruning that used to need the parallel fleet's build barrier *)
    match left_lane with
    | (`Spill (_, frag, _) | `Batch (_, frag, _, _, _))
      when kind = Plan.Inner && mode = `Radix ->
      let js = Hashtbl.create 1 in
      Hashtbl.replace js 0
        {
          sj_cols = [];
          sj_rows = mat_rows;
          sj_radix = radix;
          sj_table = table;
          sj_mode = mode;
          sj_kind = kind;
          sj_residual = residual;
          sj_left_key =
            (match equi with Some (lk, _) when use_hash -> Some lk | _ -> None);
          sj_ikeys = ikey_vec;
        };
      frag.bf_joins <- Some js
    | _ -> ()));
  fun consumer ->
    let mat_consumer () =
      incr mat_rows;
      (match int_keys with
      | Some g -> ikey_push (g ())
      | None -> (
        match right_key_val with
        | Some kv -> Vec.push key_vec (kv ())
        | None -> ()));
      List.iter
        (fun slot ->
          Vec.push slot.ps_vec (slot.ps_get ());
          Counters.add_materialized 1)
        payload
    in
    let right_runner = run_right mat_consumer in
    let emit_match = make_emit ~pred_c ~m_cur ~consumer in
    let probe_consumer =
      join_probe ~kind ~mode ~left_key:left_key_get ~rows:mat_rows ~radix ~table
        ~null_row ~emit:emit_match ~consumer
    in
    let left_runner =
      match left_lane with
      | `Tuple run_left -> run_left probe_consumer
      | `Spill (bs, frag, _) -> bfrag_spill ctx frag ~bs probe_consumer
      | `Batch (bs, frag, kbuf, kfill, _) ->
        count_lane ctx Counters.add_lanes_batch;
        let probe =
          batch_probe_sink ~kind ~radix ~kbuf ~seek:frag.bf_src.Source.seek
            ~null_row ~emit:emit_match ~consumer
        in
        bfrag_driver ctx frag ~bs (fun ~base ~sel ~n ->
            kfill ~base ~sel ~n;
            probe ~base ~sel ~n)
    in
    let build () =
      mat_rows := 0;
      ikey_n := 0;
      Vec.clear key_vec;
      List.iter (fun slot -> Vec.clear slot.ps_vec) payload;
      let cache = Registry.cache ctx.reg in
      let loaded =
        if not packable then false
        else
          match cache.Cache_iface.lookup_packed ~key:cache_key with
          | Some packed ->
            mat_rows := packed.Cache_iface.length;
            (match List.assoc_opt "__key" packed.Cache_iface.cols with
            | Some (Proteus_storage.Column.Ints a) when int_keys <> None ->
              ikey_vec := Array.copy a;
              ikey_n := Array.length a
            | Some kcol ->
              keys :=
                Array.init packed.Cache_iface.length
                  (Proteus_storage.Column.get kcol)
            | None -> ());
            List.iteri
              (fun i slot ->
                match List.assoc_opt (Fmt.str "c%d" i) packed.Cache_iface.cols with
                | Some col ->
                  slot.ps_arr :=
                    Array.init packed.Cache_iface.length
                      (Proteus_storage.Column.get col)
                | None -> ())
              payload;
            true
          | None -> false
      in
      if not loaded then begin
        let e0 = Fault.errors_total () in
        (match par_build with
        | Some fleet -> fleet ()
        | None -> right_runner ());
        keys := Vec.to_array key_vec;
        (* trim the int-key scratch to its live prefix (the parallel build's
           blit concat already leaves it exact — no copy in that case) *)
        if int_keys <> None && Array.length !ikey_vec <> !ikey_n then
          ikey_vec := Array.sub !ikey_vec 0 !ikey_n;
        List.iter (fun slot -> slot.ps_arr := Vec.to_array slot.ps_vec) payload;
        (* a build side materialized while rows were being skipped is a
           partial relation: keep it for this query, never install it *)
        if packable && Fault.errors_total () > e0 then
          cache.Cache_iface.quarantine ~id:cache_key
        else if packable then begin
          let cols =
            ( "__key",
              match int_keys with
              | Some _ -> Proteus_storage.Column.Ints (Array.copy !ikey_vec)
              | None ->
                Proteus_storage.Column.of_values
                  (Option.value key_ty ~default:Ptype.Int)
                  (Array.to_list !keys) )
            :: List.mapi
                 (fun i slot ->
                   ( Fmt.str "c%d" i,
                     Proteus_storage.Column.of_values
                       (Option.value slot.ps_ty ~default:Ptype.Int)
                       (Array.to_list !(slot.ps_arr)) ))
                 payload
          in
          cache.Cache_iface.store_packed ~key:cache_key ~datasets:(Plan.datasets right)
            ~bias
            { Cache_iface.length = !mat_rows; cols }
        end
      end;
      (* cluster/build the index over the materialized keys: partitioned
         parallel clustering on a multi-domain spine (safe here — builds
         run before the outer fan-out), serial two-pass otherwise *)
      match left_key_get, int_keys with
      | Some _, Some _ ->
        let bdomains =
          match ctx.par with Some p -> build_fan p.par_domains | None -> 1
        in
        radix := Some (Radix.build_par ~domains:bdomains !ikey_vec)
      | Some _, None ->
        VH.reset table;
        let ks = !keys in
        for row = Array.length ks - 1 downto 0 do
          match ks.(row) with
          | Value.Null -> ()
          | k ->
            let prev = try VH.find table k with Not_found -> [] in
            VH.replace table k (row :: prev)
        done
      | None, _ -> ()
    in
    match share with
    | Some (p, _) ->
      (* template: the build phase runs once, before fan-out (in parallel
         itself when the build side can fan out) *)
      p.par_builds := build :: !(p.par_builds);
      fun () -> Counters.time Counters.Probe left_runner
    | None ->
      fun () ->
        Counters.time Counters.Build build;
        Counters.time Counters.Probe left_runner

(* A probe-only join instance for workers > 0: re-register the build-side
   bindings over the template's materialized columns (with a private row
   cursor), compile the left spine and the residual against them, and probe
   the shared, finished lookup structure read-only. *)
and compile_join_probe ctx (sj : shared_join) ~left =
  let m_cur = ref 0 in
  let null_row = ref false in
  List.iter
    (fun (b, cols) ->
      Hashtbl.replace ctx.cenv b (Exprc.Row_repr (cols, m_cur, null_row)))
    sj.sj_cols;
  (* same probe-lane choice as the template: batch probe when the spine is
     a batchable fragment and the key sits in the int lane *)
  let left_lane =
    match ctx.batch, sj.sj_left_key, sj.sj_mode with
    | Some bs, Some lk, `Radix -> (
      match compile_bfrag ctx left with
      | Some frag -> (
        match Exprc.compile ctx.cenv lk with
        | Exprc.C_int _ as c -> (
          match
            Exprc.batch_int_fill ctx.cenv ~batch_size:bs
              ~seek:frag.bf_src.Source.seek lk
          with
          | Some (kbuf, kfill) -> `Batch (bs, frag, kbuf, kfill, c)
          | None -> `Spill (bs, frag, c))
        | c -> `Spill (bs, frag, c))
      | None -> `Tuple (compile ctx left))
    | _ -> `Tuple (compile ctx left)
  in
  let left_key =
    match left_lane with
    | `Batch (_, _, _, _, c) | `Spill (_, _, c) -> Some c
    | `Tuple _ -> Option.map (Exprc.compile ctx.cenv) sj.sj_left_key
  in
  let pred_c =
    match sj.sj_residual with
    | Expr.Const (Value.Bool true) -> None
    | residual -> Some (Exprc.to_pred (Exprc.compile ctx.cenv residual))
  in
  fun consumer ->
    let emit = make_emit ~pred_c ~m_cur ~consumer in
    let probe_consumer () =
      join_probe ~kind:sj.sj_kind ~mode:sj.sj_mode ~left_key ~rows:sj.sj_rows
        ~radix:sj.sj_radix ~table:sj.sj_table ~null_row ~emit ~consumer
    in
    let left_runner =
      match left_lane with
      | `Tuple run_left -> run_left (probe_consumer ())
      | `Spill (bs, frag, _) -> bfrag_spill ctx frag ~bs (probe_consumer ())
      | `Batch (bs, frag, kbuf, kfill, _) ->
        count_lane ctx Counters.add_lanes_batch;
        let probe =
          batch_probe_sink ~kind:sj.sj_kind ~radix:sj.sj_radix ~kbuf
            ~seek:frag.bf_src.Source.seek ~null_row ~emit ~consumer
        in
        bfrag_driver ctx frag ~bs (fun ~base ~sel ~n ->
            kfill ~base ~sel ~n;
            probe ~base ~sel ~n)
    in
    fun () -> Counters.time Counters.Probe left_runner

(* Sort materializes the whole record of every binding it carries, so those
   bindings' producers must be able to reconstruct full values. *)
let rec sort_bindings (p : Plan.t) =
  (match p with Plan.Sort { input; _ } -> Plan.bindings input | _ -> [])
  @ List.concat_map sort_bindings (Plan.children p)

let build_required (plan : Plan.t) =
  let required = Exprc.required_paths (all_exprs plan) in
  List.fold_left
    (fun req b -> (b, `Whole) :: List.remove_assoc b req)
    required (sort_bindings plan)

(* Project fusion: a Reduce directly over a Project inlines the projected
   field expressions into the fold's predicate and aggregate expressions,
   so a scan→select→project→aggregate pipeline keeps a batchable shape
   (and the tuple lane skips a boxed record per tuple). Pure expression
   substitution — same precedent as projection pushdown, which already
   skips evaluating fields nobody reads. *)
let fuse_projects (plan : Plan.t) : Plan.t =
  let exception Keep in
  let rec subst binding fields (e : Expr.t) : Expr.t =
    match e with
    | Expr.Var v when v = binding -> Expr.Record_ctor fields
    | Expr.Const _ | Expr.Param _ | Expr.Var _ -> e
    | Expr.Field (Expr.Var v, f) when v = binding -> (
      match List.assoc_opt f fields with
      | Some fe -> fe
      | None -> raise Keep (* missing field: keep the Project's runtime error *))
    | Expr.Field (x, f) -> Expr.Field (subst binding fields x, f)
    | Expr.Binop (op, a, b) ->
      Expr.Binop (op, subst binding fields a, subst binding fields b)
    | Expr.Unop (op, a) -> Expr.Unop (op, subst binding fields a)
    | Expr.If (c, t, f) ->
      Expr.If (subst binding fields c, subst binding fields t, subst binding fields f)
    | Expr.Record_ctor fs ->
      Expr.Record_ctor (List.map (fun (n, x) -> (n, subst binding fields x)) fs)
    | Expr.Coll_ctor (c, xs) -> Expr.Coll_ctor (c, List.map (subst binding fields) xs)
  in
  let rec fuse (p : Plan.t) =
    match p with
    | Plan.Reduce { monoid_output; pred; input = Plan.Project { binding; fields; input } }
      -> (
      try
        fuse
          (Plan.Reduce
             {
               monoid_output =
                 List.map
                   (fun (a : Plan.agg) -> { a with Plan.expr = subst binding fields a.expr })
                   monoid_output;
               pred = subst binding fields pred;
               input;
             })
      with Keep -> p)
    | _ -> p
  in
  fuse plan

(* Whether [compile_bfrag] will take this fragment (same decision tree,
   no compilation side effects — cache lookups go through the memo, so the
   later real compile observes the same, single, lookup). *)
let rec batchable_shape ctx (p : Plan.t) =
  ctx.batch <> None
  &&
  match p with
  | Plan.Scan _ -> true
  | Plan.Select { pred; input = Plan.Scan { dataset; binding; _ }; _ }
    when select_paths ctx binding <> None -> (
    match ctx.par with
    | Some pp when pp.par_spine -> true
    | _ -> (
      let paths = Option.get (select_paths ctx binding) in
      match lookup_select_memo ctx ~dataset ~binding ~pred ~paths with
      | Some _ -> true
      | None -> not (select_cache_should_store ctx ~dataset ~binding ~pred)))
  | Plan.Select { input; _ } -> batchable_shape ctx input
  | _ -> false

(* The scalar (tuple-lane) Reduce: compile the input pipeline and fold
   per-tuple aggregate steps over it. *)
let reduce_tuple (ctx : ctx) ~monoid_output ~pred ~input : unit -> Value.t =
  let cenv = ctx.cenv in
  let run_input = compile ctx input in
  let pred_c = Exprc.to_pred (Exprc.compile cenv pred) in
  let has_join = plan_has_join input in
  let factories =
    List.map
      (fun (a : Plan.agg) ->
        (a.agg_name, Agg.factory a.monoid (Exprc.compile cenv a.expr)))
      monoid_output
  in
  fun () ->
    let instances = List.map (fun (n, f) -> (n, f ())) factories in
    let steps = List.map (fun (_, (i : Agg.instance)) -> i.step) instances in
    let consumer =
      match steps with
      | [ s ] -> fun () -> if pred_c () then s ()
      | ss -> fun () -> if pred_c () then List.iter (fun s -> s ()) ss
    in
    drive_phase has_join (run_input consumer);
    (match instances with
    | [ (_, i) ] -> i.value ()
    | many -> Value.record (List.map (fun (n, (i : Agg.instance)) -> (n, i.value ())) many))

let prepare_with (ctx : ctx) (plan : Plan.t) : unit -> Value.t =
  let cenv = ctx.cenv in
  match plan with
  | Plan.Reduce { monoid_output; pred; input }
    when (match (ctx.splice, ctx.batch) with
         | None, Some _ ->
           Agg.mergeable (List.map (fun (a : Plan.agg) -> a.monoid) monoid_output)
           && batchable_shape ctx input
         | _ -> false)
         && compile_bfrag ctx input = None ->
    (* [batchable_shape] accepted the fragment but the compile refused it —
       the scan elects cache fills under an active error policy, which only
       the tuple lane's probe-then-commit drivers handle *)
    reduce_tuple ctx ~monoid_output ~pred ~input
  | Plan.Reduce { monoid_output; pred; input }
    when (match (ctx.splice, ctx.batch) with
         | None, Some _ ->
           Agg.mergeable (List.map (fun (a : Plan.agg) -> a.monoid) monoid_output)
           && batchable_shape ctx input
         | _ -> false) ->
    (* batch lane all the way to the root: the fragment feeds array-level
       accumulator loops; the Reduce predicate is one more (non-branch)
       filter node. Lanes fold in selection order with exactly the scalar
       step's operations, so the result is bit-identical to the tuple
       lane — floats included. *)
    let bs = Option.get ctx.batch in
    let frag = Option.get (compile_bfrag ctx input) in
    let frag =
      match pred with
      | Expr.Const (Value.Bool true) -> frag
      | p ->
        let frag = bfrag_zone_pred ctx frag p in
        {
          frag with
          bf_nodes = frag.bf_nodes @ [ bfilter_node ctx ~bs ~src:frag.bf_src ~branch:false p ];
        }
    in
    let seek = frag.bf_src.Source.seek in
    let bfactories =
      List.map
        (fun (a : Plan.agg) ->
          let scalar = Exprc.compile cenv a.expr in
          let batch = Exprc.compile_batch cenv ~batch_size:bs a.expr in
          match Agg.batch_factory a.monoid ~seek ~scalar ~batch with
          | Some f -> (a.agg_name, f)
          | None -> assert false (* mergeable excludes collection monoids *))
        monoid_output
    in
    count_lane ctx Counters.add_lanes_batch;
    fun () ->
      let instances = List.map (fun (n, f) -> (n, f ())) bfactories in
      let sink =
        match List.map (fun (_, (i : Agg.binstance)) -> i.bstep) instances with
        | [ s ] -> s
        | ss -> fun ~base ~sel ~n -> List.iter (fun s -> s ~base ~sel ~n) ss
      in
      Counters.time Counters.Scan (bfrag_driver ctx frag ~bs sink);
      (match instances with
      | [ (_, i) ] -> i.bvalue ()
      | many ->
        Value.record (List.map (fun (n, (i : Agg.binstance)) -> (n, i.bvalue ())) many))
  | Plan.Reduce { monoid_output; pred; input } ->
    let run_input = compile ctx input in
    let pred_c = Exprc.to_pred (Exprc.compile cenv pred) in
    let has_join = plan_has_join input in
    let factories =
      List.map
        (fun (a : Plan.agg) ->
          (a.agg_name, Agg.factory a.monoid (Exprc.compile cenv a.expr)))
        monoid_output
    in
    fun () ->
      let instances = List.map (fun (n, f) -> (n, f ())) factories in
      let steps = List.map (fun (_, (i : Agg.instance)) -> i.step) instances in
      let consumer =
        match steps with
        | [ s ] -> fun () -> if pred_c () then s ()
        | ss -> fun () -> if pred_c () then List.iter (fun s -> s ()) ss
      in
      drive_phase has_join (run_input consumer);
      (match instances with
      | [ (_, i) ] -> i.value ()
      | many -> Value.record (List.map (fun (n, (i : Agg.instance)) -> (n, i.value ())) many))
  | _ ->
    let run = compile ctx plan in
    let visible = Plan.bindings plan in
    let has_join = plan_has_join plan in
    let getters =
      List.map (fun b -> (b, Exprc.to_val (Exprc.compile cenv (Expr.Var b)))) visible
    in
    let shape =
      match getters with
      | [ (_, g) ] -> g
      | gs -> fun () -> Value.record (List.map (fun (b, g) -> (b, g ())) gs)
    in
    fun () ->
      let rows = ref [] in
      drive_phase has_join (run (fun () -> rows := shape () :: !rows));
      Value.bag (List.rev !rows)

let prepare_slotted ~batch_size (reg : Registry.t) ~slots (plan : Plan.t) :
    unit -> Value.t =
  let plan = fuse_projects plan in
  let ctx =
    {
      reg;
      cenv = new_cenv slots;
      slots;
      required = build_required plan;
      par = None;
      batch = (if batch_size > 0 then Some batch_size else None);
      sel_memo = Hashtbl.create 4;
      splice = None;
    }
  in
  prepare_with ctx plan

let prepare ?(batch_size = default_batch_size) reg plan =
  prepare_slotted ~batch_size reg ~slots:[] plan

(* A prepared engine plus its parameter slots: rebinding writes the slots
   and re-runs the same staged closures — no re-compilation. *)
type bound = {
  bd_run : unit -> Value.t;
  bd_params : (string * Value.t ref) list;
}

let bind (b : bound) env =
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name b.bd_params with
      | Some slot -> slot := v
      | None -> Perror.plan_error "unknown parameter ?%s" name)
    env

let fresh_slots plan =
  List.map
    (fun n -> (n, ref Value.Null))
    (Proteus_algebra.Analysis.params plan)

let prepare_bound ?(batch_size = default_batch_size) reg plan =
  let slots = fresh_slots plan in
  { bd_run = prepare_slotted ~batch_size reg ~slots plan; bd_params = slots }

let execute ?batch_size reg plan = prepare ?batch_size reg plan ()

(* ------------------------------------------------------------------ *)
(* Morsel-driven parallel execution (Section "Parallelism substitution"
   in DESIGN.md).

   The driver analyses the spine — the path from the root through
   Select/Project/Unnest and join probe (left) sides down to the driving
   scan — and instantiates the compiled pipeline once per domain. Each
   instance owns its closures and its scan cursor; they share the morsel
   dispenser, the (template-built) join build sides, and nothing else.
   Per-morsel partial states are merged on the calling domain in morsel
   order, so results do not depend on which worker ran which morsel. *)

(* The pipeline breaker closest to the driving scan; everything below it
   streams and can fan out, everything above it runs serially over the
   merged stream. *)
let rec bottom_breaker (p : Plan.t) : Plan.t option =
  match p with
  | Plan.Scan _ -> None
  | Plan.Select { input; _ } | Plan.Project { input; _ } | Plan.Unnest { input; _ } ->
    bottom_breaker input
  | Plan.Join { left; _ } -> bottom_breaker left
  | Plan.Nest { input; _ } | Plan.Sort { input; _ } | Plan.Reduce { input; _ } -> (
    match bottom_breaker input with Some b -> Some b | None -> Some p)

(* Root Reduce over primitive monoids: every morsel folds into its own
   accumulator set; partials merge in morsel order (deterministic for any
   worker count, since the morsel size does not depend on it). *)
let par_reduce reg required ~slots ~batch ~domains ~(drive : drive) ~monoid_output ~pred
    input =
  let monoids = List.map (fun (a : Plan.agg) -> a.monoid) monoid_output in
  let instances, disp, run_fleet =
    compile_instances reg required ~slots ~batch ~domains ~drive input ~stage:compile
      ~finish:(fun ctx p compiled ->
        let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
        let factories =
          List.map
            (fun (a : Plan.agg) ->
              (a.agg_name, Agg.factory a.monoid (Exprc.compile ctx.cenv a.expr)))
            monoid_output
        in
        (compiled, pred_c, factories, p))
  in
  let _, _, factories0, _ = instances.(0) in
  let has_join = plan_has_join input in
  fun () ->
    let all = Array.make domains [||] in
    let wire w (run_input, pred_c, factories, (p : par)) =
      let buckets = Array.make (Pool.Dispenser.morsels disp) None in
      all.(w) <- buckets;
      let cur = ref (-1) in
      let cur_step = ref (fun () -> ()) in
      let consumer () =
        if pred_c () then begin
          let mi = !(p.par_morsel) in
          if !cur <> mi then begin
            cur := mi;
            let insts = List.map (fun (_, f) -> f ()) factories in
            buckets.(mi) <- Some insts;
            cur_step :=
              (match insts with
              | [ (i : Agg.instance) ] -> i.step
              | is -> fun () -> List.iter (fun (i : Agg.instance) -> i.step ()) is)
          end;
          !cur_step ()
        end
      in
      run_input consumer
    in
    drive_phase has_join (fun () -> run_fleet wire);
    let nm = Pool.Dispenser.morsels disp in
    let merged = ref None in
    Counters.time Counters.Merge (fun () ->
        for mi = 0 to nm - 1 do
          for w = 0 to domains - 1 do
            match all.(w).(mi) with
            | None -> ()
            | Some insts ->
              let parts = List.map (fun (i : Agg.instance) -> i.partial ()) insts in
              merged :=
                Some
                  (match !merged with
                  | None -> parts
                  | Some acc ->
                    List.map2
                      (fun m (a, b) -> Agg.merge m a b)
                      monoids (List.combine acc parts))
          done
        done);
    let finals =
      match !merged with
      | Some parts -> List.map2 Agg.finalize monoids parts
      | None ->
        (* empty input: a fresh accumulator's value, as in the serial engine *)
        List.map (fun (_, f) -> ((f () : Agg.instance)).value ()) factories0
    in
    match List.map2 (fun (a : Plan.agg) v -> (a.agg_name, v)) monoid_output finals with
    | [ (_, v) ] -> v
    | many -> Value.record many

(* Root Reduce on the batch lane: each worker drives its compiled fragment
   morsel by morsel; a fresh set of batch accumulators per morsel, partials
   merged in morsel order — the exact merge structure of [par_reduce], so
   batch and tuple lanes agree bit-for-bit at every domain count. *)
let par_batch_reduce reg required ~slots ~batch:bs ~domains ~(drive : drive)
    ~monoid_output ~pred input =
  let monoids = List.map (fun (a : Plan.agg) -> a.monoid) monoid_output in
  let instances, disp, run_fleet =
    compile_instances reg required ~slots ~batch:(Some bs) ~domains ~drive input
      ~stage:compile_bfrag
      ~finish:(fun ctx p frag ->
        let frag =
          match frag with
          | Some f -> f
          | None -> Perror.plan_error "batch lane: fragment refused on a parallel spine"
        in
        let frag =
          match pred with
          | Expr.Const (Value.Bool true) -> frag
          | pr ->
            let frag = bfrag_zone_pred ctx frag pr in
            {
              frag with
              bf_nodes =
                frag.bf_nodes @ [ bfilter_node ctx ~bs ~src:frag.bf_src ~branch:false pr ];
            }
        in
        let seek = frag.bf_src.Source.seek in
        let bfactories =
          List.map
            (fun (a : Plan.agg) ->
              match
                Agg.batch_factory a.monoid ~seek ~scalar:(Exprc.compile ctx.cenv a.expr)
                  ~batch:(Exprc.compile_batch ctx.cenv ~batch_size:bs a.expr)
              with
              | Some f -> f
              | None -> assert false (* mergeable excludes collection monoids *))
            monoid_output
        in
        (frag, bfactories, ctx, p))
  in
  Counters.add_lanes_batch 1;
  let _, bfactories0, _, _ = instances.(0) in
  fun () ->
    let all = Array.make domains [||] in
    let wire w (frag, bfactories, ctx, (p : par)) =
      let buckets = Array.make (Pool.Dispenser.morsels disp) None in
      all.(w) <- buckets;
      let cur = ref (-1) in
      let nop ~base:_ ~sel:_ ~n:_ = () in
      let cur_step = ref nop in
      let sink ~base ~sel ~n =
        let mi = !(p.par_morsel) in
        if !cur <> mi then begin
          cur := mi;
          let insts = List.map (fun f -> f ()) bfactories in
          buckets.(mi) <- Some insts;
          cur_step :=
            (match insts with
            | [ (i : Agg.binstance) ] -> i.bstep
            | is ->
              fun ~base ~sel ~n ->
                List.iter (fun (i : Agg.binstance) -> i.bstep ~base ~sel ~n) is)
        end;
        !cur_step ~base ~sel ~n
      in
      bfrag_driver ctx frag ~bs sink
    in
    Counters.time Counters.Scan (fun () -> run_fleet wire);
    let nm = Pool.Dispenser.morsels disp in
    let merged = ref None in
    Counters.time Counters.Merge (fun () ->
        for mi = 0 to nm - 1 do
          for w = 0 to domains - 1 do
            match all.(w).(mi) with
            | None -> ()
            | Some insts ->
              let parts = List.map (fun (i : Agg.binstance) -> i.bpartial ()) insts in
              merged :=
                Some
                  (match !merged with
                  | None -> parts
                  | Some acc ->
                    List.map2
                      (fun m (a, b) -> Agg.merge m a b)
                      monoids (List.combine acc parts))
          done
        done);
    let finals =
      match !merged with
      | Some parts -> List.map2 Agg.finalize monoids parts
      | None -> List.map (fun f -> ((f () : Agg.binstance)).bvalue ()) bfactories0
    in
    match List.map2 (fun (a : Plan.agg) v -> (a.agg_name, v)) monoid_output finals with
    | [ (_, v) ] -> v
    | many -> Value.record many

(* Root Reduce into a single collection monoid (the shape of a plain
   SELECT): qualifying values buffer per morsel and concatenate in morsel
   order — exactly the serial scan order. *)
let par_collect_reduce reg required ~slots ~batch ~domains ~(drive : drive) ~coll
    ~(agg : Plan.agg) ~pred input =
  let _, disp, run_fleet =
    compile_instances reg required ~slots ~batch ~domains ~drive input ~stage:compile
      ~finish:(fun ctx p compiled ->
        let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
        let get = Exprc.to_val (Exprc.compile ctx.cenv agg.expr) in
        (compiled, pred_c, get, p))
  in
  let has_join = plan_has_join input in
  fun () ->
    let all = Array.make domains [||] in
    let wire w (run_input, pred_c, get, (p : par)) =
      let buckets = Array.make (Pool.Dispenser.morsels disp) [] in
      all.(w) <- buckets;
      let m = p.par_morsel in
      let consumer () = if pred_c () then buckets.(!m) <- get () :: buckets.(!m) in
      run_input consumer
    in
    drive_phase has_join (fun () -> run_fleet wire);
    let nm = Pool.Dispenser.morsels disp in
    let out = ref [] in
    Counters.time Counters.Merge (fun () ->
        for mi = nm - 1 downto 0 do
          for w = domains - 1 downto 0 do
            List.iter (fun v -> out := v :: !out) all.(w).(mi)
          done
        done);
    Monoid.collect coll !out

(* Parallelism substitution for a streaming sub-plan under a serial
   consumer (a Sort, or the bag-collecting root): N instances scan and
   buffer their visible bindings' values per morsel; the buffered rows
   replay serially, in morsel order — the serial scan order — through
   boxed registers the consumer's getters read. *)
let buffered_splice reg required ~slots ~batch ~domains ~(drive : drive) subplan
    ~(serial_cenv : Exprc.cenv) () =
  let visible = Plan.bindings subplan in
  let _, disp, run_fleet =
    compile_instances reg required ~slots ~batch ~domains ~drive subplan ~stage:compile
      ~finish:(fun ctx p compiled ->
        let getters =
          List.map (fun b -> Exprc.to_val (Exprc.compile ctx.cenv (Expr.Var b))) visible
        in
        (compiled, getters, p))
  in
  let regs = List.map (fun b -> (b, ref Value.Null)) visible in
  List.iter (fun (b, r) -> Hashtbl.replace serial_cenv b (Exprc.Boxed_repr r)) regs;
  let has_join = plan_has_join subplan in
  fun consumer () ->
    let all = Array.make domains [||] in
    let wire w (run_input, getters, (p : par)) =
      let buckets = Array.make (Pool.Dispenser.morsels disp) [] in
      all.(w) <- buckets;
      let m = p.par_morsel in
      let push () = buckets.(!m) <- List.map (fun g -> g ()) getters :: buckets.(!m) in
      run_input push
    in
    drive_phase has_join (fun () -> run_fleet wire);
    let nm = Pool.Dispenser.morsels disp in
    Counters.time Counters.Merge (fun () ->
        for mi = 0 to nm - 1 do
          for w = 0 to domains - 1 do
            List.iter
              (fun row ->
                List.iter2 (fun (_, r) v -> r := v) regs row;
                consumer ())
              (List.rev all.(w).(mi))
          done
        done)

(* Parallelism substitution at a Nest over primitive monoids (the GROUP BY
   breaker): partitioned parallel group-by. Each domain scans one static
   contiguous chunk of the input into a single persistent group table it
   reuses across its whole range — no per-morsel table churn, no per-morsel
   re-merge — and the per-domain tables merge once, at pipeline end, in
   domain order; the merged groups emit sorted by key. Static chunks make
   the worker-to-rows mapping deterministic at a fixed domain count, so a
   given (data, domains) pair always folds in the same association (the
   serial engine emits in first-encounter order instead; group-by output
   order carries no contract). *)
let nest_splice reg required ~slots ~batch ~domains ~(drive : drive) ~keys ~aggs ~pred
    ~binding input ~(serial_cenv : Exprc.cenv) () =
  let monoids = List.map (fun (a : Plan.agg) -> a.monoid) aggs in
  let names = List.map (fun (a : Plan.agg) -> a.agg_name) aggs in
  let has_join = plan_has_join input in
  let instances, _disp, run_fleet =
    compile_instances reg required ~slots ~batch ~domains ~static:true ~drive input
      ~stage:compile
      ~finish:(fun ctx p compiled ->
        let pred_c = Exprc.to_pred (Exprc.compile ctx.cenv pred) in
        let ckeys = List.map (fun (n, e) -> (n, Exprc.compile ctx.cenv e)) keys in
        let factories =
          List.map
            (fun (a : Plan.agg) -> Agg.factory a.monoid (Exprc.compile ctx.cenv a.expr))
            aggs
        in
        (compiled, pred_c, ckeys, factories, p))
  in
  (* the unboxed single-int-key grouping applies only when every instance
     compiled the key to the int lane *)
  let int_key =
    Array.for_all
      (fun (_, _, ckeys, _, _) ->
        match ckeys with [ (_, Exprc.C_int _) ] -> true | _ -> false)
      instances
  in
  let group_reg = ref Value.Null in
  Hashtbl.replace serial_cenv binding (Exprc.Boxed_repr group_reg);
  fun consumer ->
    let emit key_fields parts =
      let agg_fields = List.map2 (fun n v -> (n, v)) names (List.map2 Agg.finalize monoids parts) in
      group_reg := Value.record (key_fields @ agg_fields);
      consumer ()
    in
    let merge_parts acc parts =
      List.map2 (fun m (a, b) -> Agg.merge m a b) monoids (List.combine acc parts)
    in
    let partials insts = List.map (fun (i : Agg.instance) -> i.partial ()) insts in
    if int_key then begin
      let kname = match keys with [ (n, _) ] -> n | _ -> assert false in
      fun () ->
        let tables : (int, Agg.instance list) Hashtbl.t array =
          Array.init domains (fun _ -> Hashtbl.create 64)
        in
        let wire w (run_input, pred_c, ckeys, factories, (_ : par)) =
          let kget = match ckeys with [ (_, Exprc.C_int g) ] -> g | _ -> assert false in
          let tbl = tables.(w) in
          let consumer () =
            if pred_c () then begin
              let k = kget () in
              let insts =
                match Hashtbl.find_opt tbl k with
                | Some insts -> insts
                | None ->
                  let insts = List.map (fun f -> f ()) factories in
                  Hashtbl.add tbl k insts;
                  Counters.add_materialized 1;
                  insts
              in
              List.iter (fun (i : Agg.instance) -> i.step ()) insts
            end
          in
          run_input consumer
        in
        drive_phase has_join (fun () -> run_fleet wire);
        let merged : (int, Value.t list) Hashtbl.t = Hashtbl.create 64 in
        Counters.time Counters.Merge (fun () ->
            for w = 0 to domains - 1 do
              Hashtbl.iter
                (fun k insts ->
                  let parts = partials insts in
                  match Hashtbl.find_opt merged k with
                  | None -> Hashtbl.replace merged k parts
                  | Some acc -> Hashtbl.replace merged k (merge_parts acc parts))
                tables.(w)
            done);
        let ks = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) merged []) in
        List.iter (fun k -> emit [ (kname, Value.Int k) ] (Hashtbl.find merged k)) ks
    end
    else
      fun () ->
        let tables : (Value.t list * Agg.instance list) VH.t array =
          Array.init domains (fun _ -> VH.create 64)
        in
        let wire w (run_input, pred_c, ckeys, factories, (_ : par)) =
          let key_getters = List.map (fun (_, c) -> Exprc.to_val c) ckeys in
          let tbl = tables.(w) in
          let consumer () =
            if pred_c () then begin
              let kvs = List.map (fun g -> g ()) key_getters in
              let key = Value.Coll (Ptype.List, kvs) in
              let _, insts =
                match VH.find_opt tbl key with
                | Some cell -> cell
                | None ->
                  let cell = (kvs, List.map (fun f -> f ()) factories) in
                  VH.add tbl key cell;
                  Counters.add_materialized (List.length kvs);
                  cell
              in
              List.iter (fun (i : Agg.instance) -> i.step ()) insts
            end
          in
          run_input consumer
        in
        drive_phase has_join (fun () -> run_fleet wire);
        let merged : (Value.t list * Value.t list) VH.t = VH.create 64 in
        Counters.time Counters.Merge (fun () ->
            for w = 0 to domains - 1 do
              VH.iter
                (fun key (kvs, insts) ->
                  let parts = partials insts in
                  match VH.find_opt merged key with
                  | None -> VH.replace merged key (kvs, parts)
                  | Some (_, acc) -> VH.replace merged key (kvs, merge_parts acc parts))
                tables.(w)
            done);
        let groups = VH.fold (fun key _ acc -> key :: acc) merged [] in
        let groups = List.sort Value.compare groups in
        List.iter
          (fun key ->
            let kvs, parts = VH.find merged key in
            let key_fields = List.map2 (fun (n, _) v -> (n, v)) keys kvs in
            emit key_fields parts)
          groups

let prepare_par_slotted ~batch_size (reg : Registry.t) ~domains ~slots
    (plan : Plan.t) : unit -> Value.t =
  let domains = max 1 domains in
  if domains <= 1 then prepare_slotted ~batch_size reg ~slots plan
  else begin
    let plan = fuse_projects plan in
    let batch = if batch_size > 0 then Some batch_size else None in
    let required = build_required plan in
    let actx =
      {
        reg;
        cenv = new_cenv slots;
        slots;
        required;
        par = None;
        batch;
        sel_memo = Hashtbl.create 4;
        splice = None;
      }
    in
    let serial () = prepare_slotted ~batch_size reg ~slots plan in
    let spliced target mk =
      let cenv = new_cenv slots in
      let ctx =
        {
          reg;
          cenv;
          slots;
          required;
          par = None;
          batch;
          sel_memo = Hashtbl.create 4;
          splice = Some (target, mk cenv);
        }
      in
      prepare_with ctx plan
    in
    let splice_fallback () =
      match bottom_breaker plan with
      | Some (Plan.Nest { keys; aggs; pred; binding; input } as target) -> (
        if not (Agg.mergeable (List.map (fun (a : Plan.agg) -> a.monoid) aggs)) then
          serial ()
        else
          match spine_drive actx input with
          | Some drive ->
            spliced target (fun serial_cenv ->
                nest_splice reg required ~slots ~batch ~domains ~drive ~keys ~aggs ~pred
                  ~binding input ~serial_cenv)
          | None -> serial ())
      | Some (Plan.Sort { input; _ }) -> (
        match spine_drive actx input with
        | Some drive ->
          spliced input (fun serial_cenv ->
              buffered_splice reg required ~slots ~batch ~domains ~drive input ~serial_cenv)
        | None -> serial ())
      | Some _ -> serial ()
      | None -> (
        match spine_drive actx plan with
        | Some drive ->
          spliced plan (fun serial_cenv ->
              buffered_splice reg required ~slots ~batch ~domains ~drive plan ~serial_cenv)
        | None -> serial ())
    in
    match plan with
    | Plan.Reduce { monoid_output; pred; input } -> (
      match spine_drive ~preds:[ pred ] actx input with
      | None -> splice_fallback ()
      | Some drive ->
        if Agg.mergeable (List.map (fun (a : Plan.agg) -> a.monoid) monoid_output) then (
          match batch with
          | Some bs when batchable_shape actx input ->
            par_batch_reduce reg required ~slots ~batch:bs ~domains ~drive ~monoid_output
              ~pred input
          | _ ->
            par_reduce reg required ~slots ~batch ~domains ~drive ~monoid_output ~pred
              input)
        else (
          match monoid_output with
          | [ ({ monoid = Monoid.Collection coll; _ } as agg) ] ->
            par_collect_reduce reg required ~slots ~batch ~domains ~drive ~coll ~agg ~pred
              input
          | _ -> serial ()))
    | _ -> splice_fallback ()
  end

let prepare_par ?(batch_size = default_batch_size) reg ~domains plan =
  prepare_par_slotted ~batch_size reg ~domains ~slots:[] plan

let prepare_bound_par ?(batch_size = default_batch_size) reg ~domains plan =
  let slots = fresh_slots plan in
  { bd_run = prepare_par_slotted ~batch_size reg ~domains ~slots plan; bd_params = slots }

let execute_par ?batch_size reg ~domains plan = prepare_par ?batch_size reg ~domains plan ()
