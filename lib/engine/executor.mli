(** Unified entry point over the executors. *)

type engine =
  | Engine_compiled  (** the on-demand specialized engine (Section 5) *)
  | Engine_volcano   (** the iterator interpreter baseline *)
  | Engine_parallel of int
      (** the specialized engine with morsel-driven parallel execution over
          N OCaml domains; [Engine_parallel 1] is exactly
          [Engine_compiled] *)

(** [run registry ~engine plan] validates and executes [plan].
    [batch_size] configures the specialized engine's vectorized lane
    (see {!Compiled.execute}); the Volcano engine ignores it. *)
val run :
  ?batch_size:int ->
  Proteus_plugin.Registry.t ->
  engine:engine ->
  Proteus_algebra.Plan.t ->
  Proteus_model.Value.t
