(** Unified entry point over the executors. *)

type engine =
  | Engine_compiled  (** the on-demand specialized engine (Section 5) *)
  | Engine_volcano   (** the iterator interpreter baseline *)
  | Engine_parallel of int
      (** the specialized engine with morsel-driven parallel execution over
          N OCaml domains; [Engine_parallel 1] is exactly
          [Engine_compiled] *)

(** [run registry ~engine plan] validates and executes [plan].
    [batch_size] configures the specialized engine's vectorized lane
    (see {!Compiled.execute}); the Volcano engine ignores it. *)
val run :
  ?batch_size:int ->
  Proteus_plugin.Registry.t ->
  engine:engine ->
  Proteus_algebra.Plan.t ->
  Proteus_model.Value.t

(** Result of a guarded (fault-tolerant) execution. *)
type outcome =
  | Completed of Proteus_model.Value.t * Proteus_model.Fault.report
      (** the query finished; the report is empty under [Fail_fast] and
          carries skip/null accounting under the degraded policies *)
  | Failed of Proteus_model.Fault.report * exn
      (** the query aborted: a data/plan error under [Fail_fast], or the
          error budget was exceeded ([Fault.Budget_exceeded]) *)
  | Timed_out of Proteus_model.Fault.report  (** the deadline passed *)
  | Cancelled of Proteus_model.Fault.report
      (** the cancellation token fired without a recorded failure *)

(** [run_guarded reg ~engine plan] executes under an error policy
    ([Fail_fast] when omitted — exactly {!run}'s semantics, but returning
    [Failed] instead of raising). [max_errors] bounds the recoverable
    errors a degraded policy may absorb before the query aborts;
    [timeout_ms] sets a deadline enforced cooperatively at morsel/batch
    boundaries. Not reentrant: one guarded query at a time per process
    (parallel runs already serialize on the domain pool). *)
val run_guarded :
  ?batch_size:int ->
  ?policy:Proteus_model.Fault.policy ->
  ?max_errors:int ->
  ?timeout_ms:int ->
  Proteus_plugin.Registry.t ->
  engine:engine ->
  Proteus_algebra.Plan.t ->
  outcome
