open Proteus_model
open Proteus_plugin

type repr =
  | Scan_repr of Source.t
  | Unnest_repr of Source.unnest_spec
  | Boxed_repr of Value.t ref
  | Row_repr of (string * Value.t array ref) list * int ref * bool ref
  | Param_repr of Value.t ref

type cenv = (string, repr) Hashtbl.t

(* Parameter slots live in the cenv under a reserved namespace: SQL
   identifiers cannot start with '?', so slot keys never collide with plan
   bindings. *)
let param_key name = "?" ^ name

let param_slot (cenv : cenv) name : Value.t ref =
  match Hashtbl.find_opt cenv (param_key name) with
  | Some (Param_repr r) -> r
  | _ -> Perror.plan_error "unbound parameter ?%s at code generation" name

type compiled =
  | C_int of (unit -> int)
  | C_float of (unit -> float)
  | C_bool of (unit -> bool)
  | C_str of (unit -> string)
  | C_val of (unit -> Value.t)

let to_val = function
  | C_int f -> fun () -> Value.Int (f ())
  | C_float f -> fun () -> Value.Float (f ())
  | C_bool f -> fun () -> Value.Bool (f ())
  | C_str f -> fun () -> Value.String (f ())
  | C_val f -> f

let to_pred = function
  | C_bool f -> f
  | C_val f ->
    fun () ->
      (match f () with
      | Value.Bool b -> b
      | Value.Null -> false
      | v -> Perror.type_error "predicate evaluated to %a" Value.pp v)
  | C_int _ | C_float _ | C_str _ ->
    Perror.type_error "non-boolean predicate"

let path_of = Proteus_algebra.Analysis.path_of

let required_paths = Proteus_algebra.Analysis.required_paths

(* Boxed field walk for dotted paths on boxed values. *)
let boxed_path get path : unit -> Value.t =
  let parts = String.split_on_char '.' path in
  fun () ->
    List.fold_left
      (fun v name ->
        match v with
        | Value.Null -> Value.Null
        | Value.Record _ as r -> (
          match Value.field_opt r name with Some x -> x | None -> Value.Null)
        | v -> Perror.type_error "field %s of non-record %a" name Value.pp v)
      (get ()) parts

(* Lift a plug-in accessor into a compiled closure: typed when the accessor
   is non-nullable and offers the matching fast path. *)
let of_access (a : Access.t) : compiled =
  if a.Access.nullable then C_val a.Access.get_val
  else
    match a.Access.get_int, a.Access.get_float, a.Access.get_bool, a.Access.get_str with
    | Some g, _, _, _ -> (
      (* Dates surface as ints in expressions via the typed lane, but their
         boxed view must stay Date for result fidelity. *)
      match Ptype.unwrap_option a.Access.ty with
      | Ptype.Date -> C_val a.Access.get_val
      | _ -> C_int g)
    | None, Some g, _, _ -> C_float g
    | None, None, Some g, _ -> C_bool g
    | None, None, None, Some g -> C_str g
    | None, None, None, None -> C_val a.Access.get_val

let compile_var_path (cenv : cenv) v path : compiled =
  let repr =
    match Hashtbl.find_opt cenv v with
    | Some r -> r
    | None -> Perror.plan_error "unbound variable %s at code generation" v
  in
  match repr, path with
  | Scan_repr src, "" -> C_val src.Source.whole
  | Scan_repr src, p -> of_access (src.Source.field p)
  | Unnest_repr u, "" -> C_val u.Source.u_value
  | Unnest_repr u, p -> of_access (u.Source.u_field p)
  | Boxed_repr r, "" -> C_val (fun () -> !r)
  | Boxed_repr r, p -> C_val (boxed_path (fun () -> !r) p)
  | Row_repr (cols, cur, null_row), p -> (
    match List.assoc_opt p cols with
    | Some arr ->
      C_val (fun () -> if !null_row then Value.Null else !arr.(!cur))
    | None -> (
      (* dotted sub-path of a materialized whole record *)
      match List.assoc_opt "" cols with
      | Some arr when p <> "" ->
        C_val
          (boxed_path (fun () -> if !null_row then Value.Null else !arr.(!cur)) p)
      | _ -> Perror.plan_error "materialized side has no column for %s.%s" v p))
  | Param_repr _, _ ->
    (* slots live under the reserved "?name" namespace; a plan binding can
       never resolve to one *)
    Perror.plan_error "variable %s resolves to a parameter slot" v

(* Numeric combination: stay in int when both sides are ints, widen to float
   otherwise; drop to boxed when a side is boxed. *)
let arith op (l : compiled) (r : compiled) : compiled =
  let int_op : (int -> int -> int) option =
    match (op : Expr.binop) with
    | Add -> Some ( + )
    | Sub -> Some ( - )
    | Mul -> Some ( * )
    | Div ->
      Some
        (fun a b -> if b = 0 then Perror.type_error "division by zero" else a / b)
    | Mod ->
      Some (fun a b -> if b = 0 then Perror.type_error "modulo by zero" else a mod b)
    | Eq | Neq | Lt | Le | Gt | Ge | And | Or | Concat | Like -> None
  in
  let float_op : (float -> float -> float) option =
    match (op : Expr.binop) with
    | Add -> Some ( +. )
    | Sub -> Some ( -. )
    | Mul -> Some ( *. )
    | Div -> Some ( /. )
    | Mod | Eq | Neq | Lt | Le | Gt | Ge | And | Or | Concat | Like -> None
  in
  match l, r, int_op, float_op with
  | C_int a, C_int b, Some iop, _ -> C_int (fun () -> iop (a ()) (b ()))
  | C_int a, C_float b, _, Some fop -> C_float (fun () -> fop (float_of_int (a ())) (b ()))
  | C_float a, C_int b, _, Some fop -> C_float (fun () -> fop (a ()) (float_of_int (b ())))
  | C_float a, C_float b, _, Some fop -> C_float (fun () -> fop (a ()) (b ()))
  | l, r, _, _ ->
    let lv = to_val l and rv = to_val r in
    C_val (fun () -> Expr.apply_binop op (lv ()) (rv ()))

let comparison op (l : compiled) (r : compiled) : compiled =
  let icmp : (int -> int -> bool) option =
    match (op : Expr.binop) with
    | Eq -> Some ( = )
    | Neq -> Some ( <> )
    | Lt -> Some ( < )
    | Le -> Some ( <= )
    | Gt -> Some ( > )
    | Ge -> Some ( >= )
    | Add | Sub | Mul | Div | Mod | And | Or | Concat | Like -> None
  in
  match icmp with
  | None -> assert false
  | Some cmp -> (
    match l, r with
    | C_int a, C_int b -> C_bool (fun () -> cmp (a ()) (b ()))
    | C_float a, C_float b -> C_bool (fun () -> cmp (compare (a ()) (b ())) 0)
    | C_int a, C_float b ->
      C_bool (fun () -> cmp (compare (float_of_int (a ())) (b ())) 0)
    | C_float a, C_int b ->
      C_bool (fun () -> cmp (compare (a ()) (float_of_int (b ()))) 0)
    | C_str a, C_str b -> C_bool (fun () -> cmp (String.compare (a ()) (b ())) 0)
    | C_bool a, C_bool b -> C_bool (fun () -> cmp (compare (a ()) (b ())) 0)
    | l, r ->
      let lv = to_val l and rv = to_val r in
      C_val (fun () -> Expr.apply_binop op (lv ()) (rv ())))

let rec compile (cenv : cenv) (e : Expr.t) : compiled =
  match path_of e with
  | Some (v, path) -> compile_var_path cenv v path
  | None -> (
    match e with
    | Expr.Const (Value.Int i) -> C_int (fun () -> i)
    | Expr.Const (Value.Float f) -> C_float (fun () -> f)
    | Expr.Const (Value.Bool b) -> C_bool (fun () -> b)
    | Expr.Const (Value.String s) -> C_str (fun () -> s)
    | Expr.Const v -> C_val (fun () -> v)
    | Expr.Param p ->
      (* read the slot per evaluation, so a re-bound engine sees the new
         constant without re-staging any closure *)
      let slot = param_slot cenv p in
      C_val (fun () -> !slot)
    | Expr.Var _ | Expr.Field _ -> assert false (* handled by path_of *)
    | Expr.Binop (Expr.And, l, r) ->
      let lp = to_pred (compile cenv l) and rp = to_pred (compile cenv r) in
      C_bool (fun () -> lp () && rp ())
    | Expr.Binop (Expr.Or, l, r) ->
      let lp = to_pred (compile cenv l) and rp = to_pred (compile cenv r) in
      C_bool (fun () -> lp () || rp ())
    | Expr.Binop (((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod) as op), l, r)
      ->
      arith op (compile cenv l) (compile cenv r)
    | Expr.Binop
        (((Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), l, r) ->
      comparison op (compile cenv l) (compile cenv r)
    | Expr.Binop (Expr.Concat, l, r) -> (
      match compile cenv l, compile cenv r with
      | C_str a, C_str b -> C_str (fun () -> a () ^ b ())
      | l, r ->
        let lv = to_val l and rv = to_val r in
        C_val (fun () -> Expr.apply_binop Expr.Concat (lv ()) (rv ())))
    | Expr.Binop (Expr.Like, l, r) -> (
      match compile cenv l, compile cenv r with
      | C_str a, C_str b -> C_bool (fun () -> Expr.like ~pattern:(b ()) (a ()))
      | l, r ->
        let lv = to_val l and rv = to_val r in
        C_val (fun () -> Expr.apply_binop Expr.Like (lv ()) (rv ())))
    | Expr.Unop (Expr.Neg, x) -> (
      match compile cenv x with
      | C_int a -> C_int (fun () -> -a ())
      | C_float a -> C_float (fun () -> -.a ())
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.Neg (v ())))
    | Expr.Unop (Expr.Not, x) -> (
      match compile cenv x with
      | C_bool a -> C_bool (fun () -> not (a ()))
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.Not (v ())))
    | Expr.Unop (Expr.Is_null, x) -> (
      match compile cenv x with
      | C_int _ | C_float _ | C_bool _ | C_str _ ->
        (* statically non-nullable: decided at compile time *)
        C_bool (fun () -> false)
      | C_val v -> C_bool (fun () -> Value.is_null (v ())))
    | Expr.Unop (Expr.To_float, x) -> (
      match compile cenv x with
      | C_int a -> C_float (fun () -> float_of_int (a ()))
      | C_float _ as c -> c
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.To_float (v ())))
    | Expr.Unop (Expr.To_int, x) -> (
      match compile cenv x with
      | C_int _ as c -> c
      | C_float a -> C_int (fun () -> int_of_float (a ()))
      | c ->
        let v = to_val c in
        C_val (fun () -> Expr.apply_unop Expr.To_int (v ())))
    | Expr.If (c, t, f) -> (
      let cp = to_pred (compile cenv c) in
      match compile cenv t, compile cenv f with
      | C_int a, C_int b -> C_int (fun () -> if cp () then a () else b ())
      | C_float a, C_float b -> C_float (fun () -> if cp () then a () else b ())
      | C_bool a, C_bool b -> C_bool (fun () -> if cp () then a () else b ())
      | C_str a, C_str b -> C_str (fun () -> if cp () then a () else b ())
      | t, f ->
        let tv = to_val t and fv = to_val f in
        C_val (fun () -> if cp () then tv () else fv ()))
    | Expr.Record_ctor fields ->
      let compiled =
        List.map (fun (n, x) -> (n, to_val (compile cenv x))) fields
      in
      C_val (fun () -> Value.record (List.map (fun (n, g) -> (n, g ())) compiled))
    | Expr.Coll_ctor (c, xs) ->
      let compiled = List.map (fun x -> to_val (compile cenv x)) xs in
      C_val (fun () -> Monoid.collect c (List.map (fun g -> g ()) compiled)))

(* ------------------------------------------------------------------- *)
(* The batch lane: kernels over primitive arrays plus a selection       *)
(* vector. A kernel fills its node's batch-aligned output buffer at the *)
(* selected slots ([out.(sel.(i))] holds the value of element           *)
(* [base + sel.(i)]); composition is kernel-then-read-buffer, so an     *)
(* expression tree becomes a short pipeline of primitive array loops.   *)
(* [compile_batch] returns [None] whenever the scalar closure is the    *)
(* right (or only correct) lane: nullable leaves, boxed/date values,    *)
(* conditionals, record/collection construction.                        *)

type bkernel = base:int -> sel:int array -> n:int -> unit

type bcompiled =
  | B_int of int array * bkernel
  | B_float of float array * bkernel
  | B_bool of bool array * bkernel
  | B_str of string array * bkernel

let nop_kernel ~base:_ ~sel:_ ~n:_ = ()

(* Per-tuple shim: a plug-in without a native fill still serves the batch
   lane through seek-then-get. *)
let shim_fill seek (get : unit -> 'a) : 'a Access.fill =
 fun base out ~sel ~n ->
  for i = 0 to n - 1 do
    let j = sel.(i) in
    seek (base + j);
    out.(j) <- get ()
  done

let bleaf bs (src : Source.t) path : bcompiled option =
  match src.Source.field path with
  | exception Perror.Plan_error _ -> None
  | a ->
    if a.Access.nullable then None
    else (
      let seek = src.Source.seek in
      match Ptype.unwrap_option a.Access.ty with
      | Ptype.Date -> None (* dates stay boxed, mirroring the scalar lane *)
      | _ -> (
        match a.Access.get_int, a.Access.get_float, a.Access.get_bool, a.Access.get_str with
        | Some g, _, _, _ ->
          let fill = match a.Access.fill_int with Some f -> f | None -> shim_fill seek g in
          let buf = Array.make bs 0 in
          Some (B_int (buf, fun ~base ~sel ~n -> fill base buf ~sel ~n))
        | None, Some g, _, _ ->
          let fill = match a.Access.fill_float with Some f -> f | None -> shim_fill seek g in
          let buf = Array.make bs 0. in
          Some (B_float (buf, fun ~base ~sel ~n -> fill base buf ~sel ~n))
        | None, None, Some g, _ ->
          let fill = match a.Access.fill_bool with Some f -> f | None -> shim_fill seek g in
          let buf = Array.make bs false in
          Some (B_bool (buf, fun ~base ~sel ~n -> fill base buf ~sel ~n))
        | None, None, None, Some g ->
          let fill = match a.Access.fill_str with Some f -> f | None -> shim_fill seek g in
          let buf = Array.make bs "" in
          Some (B_str (buf, fun ~base ~sel ~n -> fill base buf ~sel ~n))
        | None, None, None, None -> None))

let rec compile_batch (cenv : cenv) ~batch_size (e : Expr.t) : bcompiled option =
  let bs = batch_size in
  let bc x = compile_batch cenv ~batch_size x in
  (* Dictionary metadata of a path compiling to a promoted string cache:
     the codes array is indexed by the source's own row ids (base + lane),
     so code-level kernels bypass string materialization entirely. *)
  let dict_of x =
    match path_of x with
    | Some (v, p) when p <> "" -> (
      match Hashtbl.find_opt cenv v with
      | Some (Scan_repr src) -> (
        match src.Source.field p with
        | exception Perror.Plan_error _ -> None
        | a -> a.Access.dict)
      | _ -> None)
    | _ -> None
  in
  let dict_const l r =
    match dict_of l, r with
    | Some d, Expr.Const (Value.String s) -> Some (d, s)
    | _ -> (
      match l, dict_of r with
      | Expr.Const (Value.String s), Some d -> Some (d, s)
      | _ -> None)
  in
  match path_of e with
  | Some (v, path) -> (
    match Hashtbl.find_opt cenv v, path with
    | Some (Scan_repr src), p when p <> "" -> bleaf bs src p
    | _ -> None)
  | None -> (
    match e with
    | Expr.Const (Value.Int i) -> Some (B_int (Array.make bs i, nop_kernel))
    | Expr.Const (Value.Float f) -> Some (B_float (Array.make bs f, nop_kernel))
    | Expr.Const (Value.Bool b) -> Some (B_bool (Array.make bs b, nop_kernel))
    | Expr.Const (Value.String s) -> Some (B_str (Array.make bs s, nop_kernel))
    | Expr.Const _ -> None
    | Expr.Param _ -> None (* standalone params stay scalar; comparisons special-case them *)
    | Expr.Var _ | Expr.Field _ -> None (* handled by path_of *)
    | Expr.Binop (Expr.And, l, r) -> (
      match bc l, bc r with
      | Some (B_bool (lb, lk)), Some (B_bool (rb, rk)) ->
        let out = Array.make bs false in
        let tmp = Array.make bs 0 in
        Some
          (B_bool
             ( out,
               fun ~base ~sel ~n ->
                 lk ~base ~sel ~n;
                 (* evaluate the right side only where the left holds —
                    the vector form of [&&]'s short circuit *)
                 let m = ref 0 in
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- lb.(j);
                   if lb.(j) then begin
                     tmp.(!m) <- j;
                     incr m
                   end
                 done;
                 if !m > 0 then begin
                   rk ~base ~sel:tmp ~n:!m;
                   for i = 0 to !m - 1 do
                     let j = tmp.(i) in
                     out.(j) <- rb.(j)
                   done
                 end ))
      | _ -> None)
    | Expr.Binop (Expr.Or, l, r) -> (
      match bc l, bc r with
      | Some (B_bool (lb, lk)), Some (B_bool (rb, rk)) ->
        let out = Array.make bs false in
        let tmp = Array.make bs 0 in
        Some
          (B_bool
             ( out,
               fun ~base ~sel ~n ->
                 lk ~base ~sel ~n;
                 let m = ref 0 in
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- lb.(j);
                   if not lb.(j) then begin
                     tmp.(!m) <- j;
                     incr m
                   end
                 done;
                 if !m > 0 then begin
                   rk ~base ~sel:tmp ~n:!m;
                   for i = 0 to !m - 1 do
                     let j = tmp.(i) in
                     out.(j) <- rb.(j)
                   done
                 end ))
      | _ -> None)
    | Expr.Binop (((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod) as op), l, r)
      -> (
      let iop : (int -> int -> int) option =
        match op with
        | Expr.Add -> Some ( + )
        | Expr.Sub -> Some ( - )
        | Expr.Mul -> Some ( * )
        | Expr.Div ->
          Some (fun a b -> if b = 0 then Perror.type_error "division by zero" else a / b)
        | Expr.Mod ->
          Some (fun a b -> if b = 0 then Perror.type_error "modulo by zero" else a mod b)
        | _ -> None
      in
      let fop : (float -> float -> float) option =
        match op with
        | Expr.Add -> Some ( +. )
        | Expr.Sub -> Some ( -. )
        | Expr.Mul -> Some ( *. )
        | Expr.Div -> Some ( /. )
        | _ -> None
      in
      match bc l, bc r, iop, fop with
      | Some (B_int (a, ka)), Some (B_int (b, kb)), Some iop, _ ->
        let out = Array.make bs 0 in
        Some
          (B_int
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 kb ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- iop a.(j) b.(j)
                 done ))
      | Some (B_int (a, ka)), Some (B_float (b, kb)), _, Some fop ->
        let out = Array.make bs 0. in
        Some
          (B_float
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 kb ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- fop (float_of_int a.(j)) b.(j)
                 done ))
      | Some (B_float (a, ka)), Some (B_int (b, kb)), _, Some fop ->
        let out = Array.make bs 0. in
        Some
          (B_float
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 kb ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- fop a.(j) (float_of_int b.(j))
                 done ))
      | Some (B_float (a, ka)), Some (B_float (b, kb)), _, Some fop ->
        let out = Array.make bs 0. in
        Some
          (B_float
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 kb ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- fop a.(j) b.(j)
                 done ))
      | _ -> None)
    | Expr.Binop
        (((Expr.Eq | Expr.Neq | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op), l, r) -> (
      let cmp : int -> int -> bool =
        match op with
        | Expr.Eq -> ( = )
        | Expr.Neq -> ( <> )
        | Expr.Lt -> ( < )
        | Expr.Le -> ( <= )
        | Expr.Gt -> ( > )
        | Expr.Ge -> ( >= )
        | _ -> assert false
      in
      let bool_out ka kb body =
        let out = Array.make bs false in
        Some
          (B_bool
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 kb ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- body j
                 done ))
      in
      (* Dictionary fast path: (in)equality of a promoted string column
         against a constant resolves the constant to its code once at
         compile time, then compares ints per lane — no string is ever
         materialized. An absent constant means an all-false (Eq) or
         all-true (Neq) kernel, via the unmatchable code -1. *)
      let dict_eq =
        match op with
        | Expr.Eq | Expr.Neq -> (
          let neq = match op with Expr.Neq -> true | _ -> false in
          match dict_const l r with
          | Some ((codes, dict), s) ->
            let target = ref (-1) in
            Array.iteri (fun i e -> if !target < 0 && String.equal e s then target := i) dict;
            let tgt = !target in
            let out = Array.make bs false in
            Some
              (B_bool
                 ( out,
                   fun ~base ~sel ~n ->
                     Counters.add_dict_probes 1;
                     for i = 0 to n - 1 do
                       let j = sel.(i) in
                       let hit = codes.(base + j) = tgt in
                       out.(j) <- (if neq then not hit else hit)
                     done ))
          | None -> None)
        | _ -> None
      in
      (* Parameter comparison: the column side keeps its batch kernel; the
         parameter side is a slot read dispatched ONCE per batch (the slot
         cannot change mid-run), picking a primitive loop for the common
         type pairings and a boxed per-lane [apply_binop] otherwise — so
         re-bound kernels agree with the scalar lane bit-for-bit, including
         Null bindings (all-false, except Neq: all-true) and cross-type
         Int/Float/Date widenings. [flip] marks the parameter as the LEFT
         operand. *)
      let param_cmp (c : bcompiled) slot ~flip =
        let out = Array.make bs false in
        let icmp (x : int) (y : int) = if flip then cmp y x else cmp x y in
        let fcmp (x : float) (y : float) =
          if flip then cmp (compare y x) 0 else cmp (compare x y) 0
        in
        let scmp (x : string) (y : string) =
          if flip then cmp (String.compare y x) 0 else cmp (String.compare x y) 0
        in
        let bcmp (x : bool) (y : bool) =
          if flip then cmp (compare y x) 0 else cmp (compare x y) 0
        in
        let generic v mk j =
          match
            if flip then Expr.apply_binop op v (mk j) else Expr.apply_binop op (mk j) v
          with
          | Value.Bool b -> b
          | Value.Null -> false
          | u -> Perror.type_error "predicate evaluated to %a" Value.pp u
        in
        let null_body =
          match op with Expr.Neq -> fun _ -> true | _ -> fun _ -> false
        in
        let kernel ka body_of =
          Some
            (B_bool
               ( out,
                 fun ~base ~sel ~n ->
                   ka ~base ~sel ~n;
                   let body = body_of (!slot : Value.t) in
                   for i = 0 to n - 1 do
                     let j = sel.(i) in
                     out.(j) <- body j
                   done ))
        in
        match c with
        | B_int (a, ka) ->
          kernel ka (function
            | Value.Int k | Value.Date k -> fun j -> icmp a.(j) k
            | Value.Float f -> fun j -> fcmp (float_of_int a.(j)) f
            | Value.Null -> null_body
            | v -> generic v (fun j -> Value.Int a.(j)))
        | B_float (a, ka) ->
          kernel ka (function
            | Value.Float f -> fun j -> fcmp a.(j) f
            | Value.Int k ->
              let fk = float_of_int k in
              fun j -> fcmp a.(j) fk
            | Value.Null -> null_body
            | v -> generic v (fun j -> Value.Float a.(j)))
        | B_str (a, ka) ->
          kernel ka (function
            | Value.String s -> fun j -> scmp a.(j) s
            | Value.Null -> null_body
            | v -> generic v (fun j -> Value.String a.(j)))
        | B_bool (a, ka) ->
          kernel ka (function
            | Value.Bool b -> fun j -> bcmp a.(j) b
            | Value.Null -> null_body
            | v -> generic v (fun j -> Value.Bool a.(j)))
      in
      match dict_eq with
      | Some _ -> dict_eq
      | None -> (
      match l, r with
      | Expr.Param _, Expr.Param _ -> None (* both dynamic: scalar lane *)
      | Expr.Param p, x -> (
        match bc x with
        | Some c -> param_cmp c (param_slot cenv p) ~flip:true
        | None -> None)
      | x, Expr.Param q -> (
        match bc x with
        | Some c -> param_cmp c (param_slot cenv q) ~flip:false
        | None -> None)
      | _ -> (
      match bc l, bc r with
      | Some (B_int (a, ka)), Some (B_int (b, kb)) ->
        bool_out ka kb (fun j -> cmp a.(j) b.(j))
      | Some (B_float (a, ka)), Some (B_float (b, kb)) ->
        bool_out ka kb (fun j -> cmp (compare a.(j) b.(j)) 0)
      | Some (B_int (a, ka)), Some (B_float (b, kb)) ->
        bool_out ka kb (fun j -> cmp (compare (float_of_int a.(j)) b.(j)) 0)
      | Some (B_float (a, ka)), Some (B_int (b, kb)) ->
        bool_out ka kb (fun j -> cmp (compare a.(j) (float_of_int b.(j))) 0)
      | Some (B_str (a, ka)), Some (B_str (b, kb)) ->
        bool_out ka kb (fun j -> cmp (String.compare a.(j) b.(j)) 0)
      | Some (B_bool (a, ka)), Some (B_bool (b, kb)) ->
        bool_out ka kb (fun j -> cmp (compare a.(j) b.(j)) 0)
      | _ -> None)))
    | Expr.Binop (Expr.Concat, l, r) -> (
      match bc l, bc r with
      | Some (B_str (a, ka)), Some (B_str (b, kb)) ->
        let out = Array.make bs "" in
        Some
          (B_str
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 kb ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- a.(j) ^ b.(j)
                 done ))
      | _ -> None)
    | Expr.Binop (Expr.Like, l, r) -> (
      match dict_of l, r with
      (* LIKE over a promoted string column: match the pattern once per
         dictionary entry at compile time, then the kernel is one array
         lookup per lane. *)
      | Some (codes, dict), Expr.Const (Value.String pat) ->
        let ok = Array.map (fun entry -> Expr.like ~pattern:pat entry) dict in
        let out = Array.make bs false in
        Some
          (B_bool
             ( out,
               fun ~base ~sel ~n ->
                 Counters.add_dict_probes 1;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- ok.(codes.(base + j))
                 done ))
      | _ -> (
        match bc l, bc r with
        | Some (B_str (a, ka)), Some (B_str (b, kb)) ->
          let out = Array.make bs false in
          Some
            (B_bool
               ( out,
                 fun ~base ~sel ~n ->
                   ka ~base ~sel ~n;
                   kb ~base ~sel ~n;
                   for i = 0 to n - 1 do
                     let j = sel.(i) in
                     out.(j) <- Expr.like ~pattern:b.(j) a.(j)
                   done ))
        | _ -> None))
    | Expr.Unop (Expr.Neg, x) -> (
      match bc x with
      | Some (B_int (a, ka)) ->
        let out = Array.make bs 0 in
        Some
          (B_int
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- -a.(j)
                 done ))
      | Some (B_float (a, ka)) ->
        let out = Array.make bs 0. in
        Some
          (B_float
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- -.a.(j)
                 done ))
      | _ -> None)
    | Expr.Unop (Expr.Not, x) -> (
      match bc x with
      | Some (B_bool (a, ka)) ->
        let out = Array.make bs false in
        Some
          (B_bool
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- not a.(j)
                 done ))
      | _ -> None)
    | Expr.Unop (Expr.To_float, x) -> (
      match bc x with
      | Some (B_int (a, ka)) ->
        let out = Array.make bs 0. in
        Some
          (B_float
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- float_of_int a.(j)
                 done ))
      | Some (B_float _) as c -> c
      | _ -> None)
    | Expr.Unop (Expr.To_int, x) -> (
      match bc x with
      | Some (B_int _) as c -> c
      | Some (B_float (a, ka)) ->
        let out = Array.make bs 0 in
        Some
          (B_int
             ( out,
               fun ~base ~sel ~n ->
                 ka ~base ~sel ~n;
                 for i = 0 to n - 1 do
                   let j = sel.(i) in
                   out.(j) <- int_of_float a.(j)
                 done ))
      | _ -> None)
    | Expr.Unop (Expr.Is_null, _)
    | Expr.If _ | Expr.Record_ctor _ | Expr.Coll_ctor _ ->
      (* conditionals, null tests and constructors keep the scalar lane *)
      None)

(* Batch join-probe support: stage an integer join-key expression as a
   (buffer, kernel) pair so the probe loop can fill a whole key array per
   batch (native [Access.fill_int] when the plug-in has one). When no batch
   kernel applies but the scalar lane yields a typed int closure, a
   seek-then-eval shim keeps the probe batched anyway. *)
let batch_int_fill (cenv : cenv) ~batch_size ~(seek : int -> unit) (e : Expr.t) :
    (int array * bkernel) option =
  match compile_batch cenv ~batch_size e with
  | Some (B_int (buf, k)) -> Some (buf, k)
  | Some _ -> None
  | None -> (
    match compile cenv e with
    | C_int g ->
      let buf = Array.make batch_size 0 in
      let fill = shim_fill seek g in
      Some (buf, fun ~base ~sel ~n -> fill base buf ~sel ~n)
    | _ | (exception Perror.Plan_error _) -> None)
