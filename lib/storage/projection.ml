(* Sorted projections: a value-ordered copy of a promoted column plus the
   OID permutation that produced it. Zone maps skip morsels only when the
   data is clustered — on scrambled data every zone's [min, max] spans the
   whole domain and nothing is provably empty. A sorted projection fixes
   that: binary-searching the ordered copy turns a range conjunct into a
   contiguous interval of *sorted positions*, and pushing each position
   through the permutation marks exactly the zones (in original row order)
   that can hold a qualifying row. Everything else skips.

   Bit-identity: the projection never changes what the scan reads — rows
   still stream in OID order over the same morsel grid; the permutation is
   consulted only to decide which zones are provably empty of matches. A
   zone is unmarked only when no qualifying sorted position maps into it,
   so dropping it cannot change any result.

   Null rows are absent from [perm]: [Expr.cmp] maps any comparison with a
   Null operand to false, so a zone holding only nulls and non-qualifying
   values is skippable outright — the same argument zone maps rest on.

   Determinism: ties sort by OID, so the permutation is a pure function of
   the column contents; the zone granule is [Zonemap.zone_rows], the same
   formula the morsel dispenser uses. *)

type keys = K_int of int array | K_float of float array

type t = {
  perm : int array;  (* sorted position -> OID; non-null rows only *)
  keys : keys;       (* column values ascending, aligned with [perm] *)
  rows : int;        (* OID-space rows covered *)
  zone : int;        (* rows per zone, = Zonemap.zone_rows rows *)
  nzones : int;
}

let rows t = t.rows

let n_keys t =
  match t.keys with K_int a -> Array.length a | K_float a -> Array.length a

let byte_size t = (16 * Array.length t.perm) + t.nzones + 40

(* Build over numeric (optionally nullable) columns. Floats containing a
   NaN bail: [Float.compare]'s total order would disagree with the IEEE
   comparisons the engine evaluates predicates with, breaking the binary
   search's monotonicity contract. *)
let of_column (col : Column.t) : t option =
  let finish rows perm keys =
    if rows = 0 then None
    else
      let zone = Zonemap.zone_rows rows in
      Some { perm; keys; rows; zone; nzones = (rows + zone - 1) / zone }
  in
  let sorted_oids n present cmp =
    let count = ref 0 in
    for i = 0 to n - 1 do
      if present i then incr count
    done;
    let perm = Array.make !count 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if present i then begin
        perm.(!k) <- i;
        incr k
      end
    done;
    Array.sort (fun i j -> let c = cmp i j in if c <> 0 then c else compare i j) perm;
    perm
  in
  match col with
  | Column.Ints a ->
    let n = Array.length a in
    let perm = sorted_oids n (fun _ -> true) (fun i j -> compare a.(i) a.(j)) in
    finish n perm (K_int (Array.map (fun i -> a.(i)) perm))
  | Column.Nullmask (mask, Column.Ints a) ->
    let n = Array.length a in
    let perm =
      sorted_oids n (fun i -> not mask.(i)) (fun i j -> compare a.(i) a.(j))
    in
    finish n perm (K_int (Array.map (fun i -> a.(i)) perm))
  | Column.Floats a ->
    let n = Array.length a in
    if Array.exists Float.is_nan a then None
    else
      let perm =
        sorted_oids n (fun _ -> true) (fun i j -> Float.compare a.(i) a.(j))
      in
      finish n perm (K_float (Array.map (fun i -> a.(i)) perm))
  | Column.Nullmask (mask, Column.Floats a) ->
    let n = Array.length a in
    let nan = ref false in
    for i = 0 to n - 1 do
      if (not mask.(i)) && Float.is_nan a.(i) then nan := true
    done;
    if !nan then None
    else
      let perm =
        sorted_oids n (fun i -> not mask.(i)) (fun i j -> Float.compare a.(i) a.(j))
      in
      finish n perm (K_float (Array.map (fun i -> a.(i)) perm))
  | Column.Bools _ | Column.Strings _ | Column.Dicts _ | Column.Nullmask _ ->
    None

(* first sorted position whose key compares >= 0 (resp. > 0) against the
   constant under [cmp] *)
let lower_bound cmp n =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp mid < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound cmp n =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp mid <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Sorted-position interval [plo, phi) of keys satisfying [column op const].
   Mixed int/float comparisons go through float conversion, mirroring
   [Expr.cmp] (and [Zonemap.zone_may_match]). [None] = unsupported test:
   the caller falls back to zone maps. *)
let select t (test : Zonemap.test) : (int * int) option =
  let n = n_keys t in
  let cmp =
    match t.keys, test with
    | K_int a, Zonemap.T_int (_, c) -> Some (fun i -> compare a.(i) c)
    | K_int a, Zonemap.T_float (_, c) ->
      Some (fun i -> Float.compare (float_of_int a.(i)) c)
    | K_float a, Zonemap.T_int (_, c) ->
      let c = float_of_int c in
      Some (fun i -> Float.compare a.(i) c)
    | K_float a, Zonemap.T_float (_, c) -> Some (fun i -> Float.compare a.(i) c)
    | _, Zonemap.T_str _ -> None
  in
  match cmp with
  | None -> None
  | Some cmp ->
    let op =
      match test with
      | Zonemap.T_int (op, _) | Zonemap.T_float (op, _) | Zonemap.T_str (op, _)
        -> op
    in
    Some
      (match op with
      | Zonemap.Eq -> (lower_bound cmp n, upper_bound cmp n)
      | Zonemap.Lt -> (0, lower_bound cmp n)
      | Zonemap.Le -> (0, upper_bound cmp n)
      | Zonemap.Gt -> (upper_bound cmp n, n)
      | Zonemap.Ge -> (lower_bound cmp n, n))

let mark t bits ~plo ~phi =
  for p = plo to phi - 1 do
    bits.(t.perm.(p) / t.zone) <- true
  done

(* Zone bitmap for the CONJUNCTION of [tests] (all on this column): the
   position intervals intersect to one contiguous band, whose permuted
   zones are the only ones that can match. [None] if any test is
   unsupported — conservative fallback, never a wrong skip. *)
let zones_for t (tests : Zonemap.test list) : bool array option =
  let rec go plo phi = function
    | [] -> Some (plo, phi)
    | tst :: rest -> (
      match select t tst with
      | None -> None
      | Some (l, h) -> go (max plo l) (min phi h) rest)
  in
  match tests with
  | [] -> None
  | _ -> (
    match go 0 (n_keys t) tests with
    | None -> None
    | Some (plo, phi) ->
      let bits = Array.make t.nzones false in
      mark t bits ~plo ~phi;
      Some bits)

(* Zone bitmap for the DISJUNCTION of [tests] — "key may be any of these
   build-side values" during join-probe pruning. *)
let zones_union t (tests : Zonemap.test list) : bool array option =
  let bits = Array.make t.nzones false in
  let rec go = function
    | [] -> Some bits
    | tst :: rest -> (
      match select t tst with
      | None -> None
      | Some (plo, phi) ->
        mark t bits ~plo ~phi;
        go rest)
  in
  match tests with [] -> None | tests -> go tests

(* Can any row of [\[lo, hi)] land in a marked zone? Rows past [t.rows] are
   "maybe" — the projection never claims knowledge beyond the column it was
   built on (mirrors [Zonemap.may_match_range]). *)
let range_may_match t (bits : bool array) ~lo ~hi =
  if hi <= lo then false
  else if lo >= t.rows then true
  else begin
    let hi_capped = min hi t.rows in
    let z0 = lo / t.zone and z1 = (hi_capped - 1) / t.zone in
    let rec go z = z <= z1 && (bits.(z) || go (z + 1)) in
    go z0 || hi > t.rows
  end
