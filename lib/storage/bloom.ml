(* Bloom filters over canonicalized scalar keys, used for shard pruning.

   A filter answers "definitely absent" / "maybe present" for the set of
   values inserted into it.  Soundness of pruning rests on the *canonical
   key* scheme matching [Expr.cmp] equality: [Int i], [Date i] and
   [Float f] can all compare equal across kinds (cmp converts through
   float), so every numeric value hashes by the bit pattern of its float
   image — [Int 3], [Date 3] and [Float 3.0] share one key.  [-0.0] is
   normalized to [0.0] (they are [=] under IEEE compare).  Strings hash
   by content (FNV-1a); strings never compare equal to numbers, so the
   two key spaces may collide only at the cost of a false positive,
   which merely weakens pruning. *)

type t = {
  bits : Bytes.t;
  nbits : int;
  k : int;
}

(* ~10 bits/key, k=7 gives ~0.8% false positives at capacity. *)
let create expected =
  let expected = max 16 expected in
  let nbits =
    let b = expected * 10 in
    (* round up to a byte multiple, cap the tiny end *)
    max 128 ((b + 7) / 8 * 8)
  in
  { bits = Bytes.make (nbits / 8) '\000'; nbits; k = 7 }

let byte_size t = Bytes.length t.bits

(* splitmix64: cheap, well-mixed 64-bit finalizer. *)
let mix (h : int64) =
  let open Int64 in
  let h = add h 0x9e3779b97f4a7c15L in
  let h = mul (logxor h (shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = mul (logxor h (shift_right_logical h 27)) 0x94d049bb133111ebL in
  logxor h (shift_right_logical h 31)

(* Canonical keys (see header comment). *)
let key_float f =
  let f = if f = 0.0 then 0.0 else f in
  mix (Int64.bits_of_float f)

let key_int i = key_float (float_of_int i)

let key_string s =
  (* FNV-1a over bytes, then one extra mix round. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  mix !h

let set_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl bit) <> 0

(* Double hashing: bit_i = h1 + i*h2 (mod nbits). *)
let index t h1 h2 i =
  let x = Int64.add h1 (Int64.mul (Int64.of_int i) h2) in
  Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int t.nbits))

let add t key =
  let h1 = key and h2 = mix (Int64.lognot key) in
  for i = 0 to t.k - 1 do
    set_bit t (index t h1 h2 i)
  done

let mem t key =
  let h1 = key and h2 = mix (Int64.lognot key) in
  let rec go i = i >= t.k || (get_bit t (index t h1 h2 i) && go (i + 1)) in
  go 0
