(* Zone maps over cached columns: per-zone min/max side structures built at
   cache-fill commit (or in one pass at promotion), consulted by the engine
   to skip whole morsels/batches that cannot satisfy a pushed-down
   comparison conjunct.

   Soundness rests on the engine's null semantics: [Expr.cmp] maps any
   comparison with a Null operand to [Bool false], so a zone that holds
   only nulls can never produce a qualifying row and is skippable outright,
   and a zone whose non-null bounds exclude the constant is skippable even
   when nulls are interleaved.

   Determinism: callers size zones with [zone_rows], the same formula the
   morsel dispenser uses, so the zone grid is a pure function of the row
   count — independent of the domain count or batch size that happened to
   fill the cache — and zones line up 1:1 with full-scan morsels. *)

type bounds =
  | Z_int of int array * int array     (* per-zone lo / hi over non-nulls *)
  | Z_float of float array * float array
  | Z_str of string array * string array
      (* per-zone lexicographic lo / hi over decoded dictionary entries *)

type t = {
  zone : int;        (* rows per zone (last zone may be short) *)
  rows : int;        (* total rows covered *)
  bounds : bounds;
  empty : bool array; (* zone has no non-null row: always skippable *)
}

(* Mirror of [Pool.Dispenser]'s morsel sizing (kept in sync by
   test_promotion's alignment check): zones align with scan morsels. *)
let zone_rows total = max 16 (min 8192 (max 1 (total / 64)))

let zones t = Array.length t.empty

(* Comparison tests the engine can push into a zone check. The operand
   order is column-op-constant; callers flip the operator when the conjunct
   was written constant-first. *)
type op = Eq | Lt | Le | Gt | Ge

type test = T_int of op * int | T_float of op * float | T_str of op * string

let of_column ?zone (col : Column.t) : t option =
  let build n get_int get_float =
    if n = 0 then None
    else begin
      let zone = match zone with Some z -> max 1 z | None -> zone_rows n in
      let nz = (n + zone - 1) / zone in
      let empty = Array.make nz true in
      let bounds =
        match get_int, get_float with
        | Some geti, _ ->
          let lo = Array.make nz max_int and hi = Array.make nz min_int in
          for i = 0 to n - 1 do
            match geti i with
            | None -> ()
            | Some v ->
              let z = i / zone in
              empty.(z) <- false;
              if v < lo.(z) then lo.(z) <- v;
              if v > hi.(z) then hi.(z) <- v
          done;
          Some (Z_int (lo, hi))
        | None, Some getf ->
          let lo = Array.make nz infinity and hi = Array.make nz neg_infinity in
          for i = 0 to n - 1 do
            match getf i with
            | None -> ()
            | Some v ->
              let z = i / zone in
              empty.(z) <- false;
              if v < lo.(z) then lo.(z) <- v;
              if v > hi.(z) then hi.(z) <- v
          done;
          Some (Z_float (lo, hi))
        | None, None -> None
      in
      match bounds with
      | Some bounds -> Some { zone; rows = n; bounds; empty }
      | None -> None
    end
  in
  (* Strings share the loop shape but need an explicit first-value seed
     (there is no lexicographic sentinel). Dictionary columns decode per
     row — codes index a small dict, so the decode is one array read. *)
  let build_str n get =
    if n = 0 then None
    else begin
      let zone = match zone with Some z -> max 1 z | None -> zone_rows n in
      let nz = (n + zone - 1) / zone in
      let empty = Array.make nz true in
      let lo = Array.make nz "" and hi = Array.make nz "" in
      for i = 0 to n - 1 do
        match get i with
        | None -> ()
        | Some v ->
          let z = i / zone in
          if empty.(z) then begin
            empty.(z) <- false;
            lo.(z) <- v;
            hi.(z) <- v
          end
          else begin
            if String.compare v lo.(z) < 0 then lo.(z) <- v;
            if String.compare v hi.(z) > 0 then hi.(z) <- v
          end
      done;
      Some { zone; rows = n; bounds = Z_str (lo, hi); empty }
    end
  in
  match col with
  | Column.Ints a ->
    build (Array.length a) (Some (fun i -> Some a.(i))) None
  | Column.Floats a ->
    build (Array.length a) None (Some (fun i -> Some a.(i)))
  | Column.Nullmask (mask, Column.Ints a) ->
    build (Array.length a)
      (Some (fun i -> if mask.(i) then None else Some a.(i)))
      None
  | Column.Nullmask (mask, Column.Floats a) ->
    build (Array.length a) None
      (Some (fun i -> if mask.(i) then None else Some a.(i)))
  | Column.Dicts (codes, dict) ->
    build_str (Array.length codes) (fun i -> Some dict.(codes.(i)))
  | Column.Nullmask (mask, Column.Dicts (codes, dict)) ->
    build_str (Array.length codes) (fun i ->
        if mask.(i) then None else Some dict.(codes.(i)))
  | Column.Bools _ | Column.Strings _ | Column.Nullmask _ -> None

(* Can any non-null row of zone [z] satisfy [column op constant]?
   Conservative: [true] means "maybe", [false] is a proof of no match. *)
let zone_may_match t z (test : test) =
  if t.empty.(z) then false
  else
    match t.bounds, test with
    | Z_int (lo, hi), T_int (op, c) -> (
      match op with
      | Eq -> lo.(z) <= c && c <= hi.(z)
      | Lt -> lo.(z) < c
      | Le -> lo.(z) <= c
      | Gt -> hi.(z) > c
      | Ge -> hi.(z) >= c)
    | Z_int (lo, hi), T_float (op, c) -> (
      (* [Expr.cmp] compares Int-vs-Float through float conversion *)
      let flo = float_of_int lo.(z) and fhi = float_of_int hi.(z) in
      match op with
      | Eq -> flo <= c && c <= fhi
      | Lt -> flo < c
      | Le -> flo <= c
      | Gt -> fhi > c
      | Ge -> fhi >= c)
    | Z_float (lo, hi), T_float (op, c) -> (
      match op with
      | Eq -> lo.(z) <= c && c <= hi.(z)
      | Lt -> lo.(z) < c
      | Le -> lo.(z) <= c
      | Gt -> hi.(z) > c
      | Ge -> hi.(z) >= c)
    | Z_float (lo, hi), T_int (op, c) -> (
      let c = float_of_int c in
      match op with
      | Eq -> lo.(z) <= c && c <= hi.(z)
      | Lt -> lo.(z) < c
      | Le -> lo.(z) <= c
      | Gt -> hi.(z) > c
      | Ge -> hi.(z) >= c)
    | Z_str (lo, hi), T_str (op, c) -> (
      (* [Expr.cmp] orders strings with [String.compare] *)
      let clo = String.compare lo.(z) c and chi = String.compare hi.(z) c in
      match op with
      | Eq -> clo <= 0 && chi >= 0
      | Lt -> clo < 0
      | Le -> clo <= 0
      | Gt -> chi > 0
      | Ge -> chi >= 0)
    | Z_str _, (T_int _ | T_float _) | (Z_int _ | Z_float _), T_str _ ->
      (* mixed-kind comparison: no proof either way *)
      true

(* Can any row in [\[lo, hi)] satisfy the test? Checks every overlapping
   zone, so it is exact for ranges of any alignment (batches need not line
   up with the zone grid). Rows past [t.rows] are treated as "maybe" —
   a zone map never claims knowledge beyond the column it was built on. *)
let may_match_range t ~lo ~hi (test : test) =
  if hi <= lo then false
  else if lo >= t.rows then true
  else begin
    let hi_capped = min hi t.rows in
    let z0 = lo / t.zone and z1 = (hi_capped - 1) / t.zone in
    let rec go z = z <= z1 && (zone_may_match t z test || go (z + 1)) in
    go z0 || hi > t.rows
  end

(* Value bounds of the non-null rows in [\[lo, hi)], for join-probe pruning:
   the caller intersects them with the build side's key range. [R_all_null]
   is a proof the range holds no comparable value at all. [None] = no claim
   (rows beyond coverage, or non-numeric bounds). Zone-granular, hence a
   conservative superset for ranges not aligned to the zone grid. *)
type range_info = R_all_null | R_int of int * int | R_float of float * float

let range_bounds t ~lo ~hi : range_info option =
  if hi <= lo then Some R_all_null
  else if lo >= t.rows || hi > t.rows then None
  else begin
    let z0 = lo / t.zone and z1 = (hi - 1) / t.zone in
    match t.bounds with
    | Z_int (blo, bhi) ->
      let mn = ref max_int and mx = ref min_int and seen = ref false in
      for z = z0 to z1 do
        if not t.empty.(z) then begin
          seen := true;
          if blo.(z) < !mn then mn := blo.(z);
          if bhi.(z) > !mx then mx := bhi.(z)
        end
      done;
      Some (if !seen then R_int (!mn, !mx) else R_all_null)
    | Z_float (blo, bhi) ->
      let mn = ref infinity and mx = ref neg_infinity and seen = ref false in
      for z = z0 to z1 do
        if not t.empty.(z) then begin
          seen := true;
          if blo.(z) < !mn then mn := blo.(z);
          if bhi.(z) > !mx then mx := bhi.(z)
        end
      done;
      Some (if !seen then R_float (!mn, !mx) else R_all_null)
    | Z_str _ -> None
  end

let byte_size t =
  let b =
    match t.bounds with
    | Z_int (lo, hi) -> 8 * (Array.length lo + Array.length hi)
    | Z_float (lo, hi) -> 8 * (Array.length lo + Array.length hi)
    | Z_str (lo, hi) ->
      Array.fold_left (fun a s -> a + String.length s + 16) 0 lo
      + Array.fold_left (fun a s -> a + String.length s + 16) 0 hi
  in
  b + Array.length t.empty
