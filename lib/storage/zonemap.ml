(* Zone maps over cached columns: per-zone min/max side structures built at
   cache-fill commit (or in one pass at promotion), consulted by the engine
   to skip whole morsels/batches that cannot satisfy a pushed-down
   comparison conjunct.

   Soundness rests on the engine's null semantics: [Expr.cmp] maps any
   comparison with a Null operand to [Bool false], so a zone that holds
   only nulls can never produce a qualifying row and is skippable outright,
   and a zone whose non-null bounds exclude the constant is skippable even
   when nulls are interleaved.

   Determinism: callers size zones with [zone_rows], the same formula the
   morsel dispenser uses, so the zone grid is a pure function of the row
   count — independent of the domain count or batch size that happened to
   fill the cache — and zones line up 1:1 with full-scan morsels. *)

type bounds =
  | Z_int of int array * int array     (* per-zone lo / hi over non-nulls *)
  | Z_float of float array * float array

type t = {
  zone : int;        (* rows per zone (last zone may be short) *)
  rows : int;        (* total rows covered *)
  bounds : bounds;
  empty : bool array; (* zone has no non-null row: always skippable *)
}

(* Mirror of [Pool.Dispenser]'s morsel sizing (kept in sync by
   test_promotion's alignment check): zones align with scan morsels. *)
let zone_rows total = max 16 (min 8192 (max 1 (total / 64)))

let zones t = Array.length t.empty

(* Comparison tests the engine can push into a zone check. The operand
   order is column-op-constant; callers flip the operator when the conjunct
   was written constant-first. *)
type op = Eq | Lt | Le | Gt | Ge

type test = T_int of op * int | T_float of op * float

let of_column ?zone (col : Column.t) : t option =
  let build n get_int get_float =
    if n = 0 then None
    else begin
      let zone = match zone with Some z -> max 1 z | None -> zone_rows n in
      let nz = (n + zone - 1) / zone in
      let empty = Array.make nz true in
      let bounds =
        match get_int, get_float with
        | Some geti, _ ->
          let lo = Array.make nz max_int and hi = Array.make nz min_int in
          for i = 0 to n - 1 do
            match geti i with
            | None -> ()
            | Some v ->
              let z = i / zone in
              empty.(z) <- false;
              if v < lo.(z) then lo.(z) <- v;
              if v > hi.(z) then hi.(z) <- v
          done;
          Some (Z_int (lo, hi))
        | None, Some getf ->
          let lo = Array.make nz infinity and hi = Array.make nz neg_infinity in
          for i = 0 to n - 1 do
            match getf i with
            | None -> ()
            | Some v ->
              let z = i / zone in
              empty.(z) <- false;
              if v < lo.(z) then lo.(z) <- v;
              if v > hi.(z) then hi.(z) <- v
          done;
          Some (Z_float (lo, hi))
        | None, None -> None
      in
      match bounds with
      | Some bounds -> Some { zone; rows = n; bounds; empty }
      | None -> None
    end
  in
  match col with
  | Column.Ints a ->
    build (Array.length a) (Some (fun i -> Some a.(i))) None
  | Column.Floats a ->
    build (Array.length a) None (Some (fun i -> Some a.(i)))
  | Column.Nullmask (mask, Column.Ints a) ->
    build (Array.length a)
      (Some (fun i -> if mask.(i) then None else Some a.(i)))
      None
  | Column.Nullmask (mask, Column.Floats a) ->
    build (Array.length a) None
      (Some (fun i -> if mask.(i) then None else Some a.(i)))
  | Column.Bools _ | Column.Strings _ | Column.Dicts _ | Column.Nullmask _ ->
    None

(* Can any non-null row of zone [z] satisfy [column op constant]?
   Conservative: [true] means "maybe", [false] is a proof of no match. *)
let zone_may_match t z (test : test) =
  if t.empty.(z) then false
  else
    match t.bounds, test with
    | Z_int (lo, hi), T_int (op, c) -> (
      match op with
      | Eq -> lo.(z) <= c && c <= hi.(z)
      | Lt -> lo.(z) < c
      | Le -> lo.(z) <= c
      | Gt -> hi.(z) > c
      | Ge -> hi.(z) >= c)
    | Z_int (lo, hi), T_float (op, c) -> (
      (* [Expr.cmp] compares Int-vs-Float through float conversion *)
      let flo = float_of_int lo.(z) and fhi = float_of_int hi.(z) in
      match op with
      | Eq -> flo <= c && c <= fhi
      | Lt -> flo < c
      | Le -> flo <= c
      | Gt -> fhi > c
      | Ge -> fhi >= c)
    | Z_float (lo, hi), T_float (op, c) -> (
      match op with
      | Eq -> lo.(z) <= c && c <= hi.(z)
      | Lt -> lo.(z) < c
      | Le -> lo.(z) <= c
      | Gt -> hi.(z) > c
      | Ge -> hi.(z) >= c)
    | Z_float (lo, hi), T_int (op, c) -> (
      let c = float_of_int c in
      match op with
      | Eq -> lo.(z) <= c && c <= hi.(z)
      | Lt -> lo.(z) < c
      | Le -> lo.(z) <= c
      | Gt -> hi.(z) > c
      | Ge -> hi.(z) >= c)

(* Can any row in [\[lo, hi)] satisfy the test? Checks every overlapping
   zone, so it is exact for ranges of any alignment (batches need not line
   up with the zone grid). Rows past [t.rows] are treated as "maybe" —
   a zone map never claims knowledge beyond the column it was built on. *)
let may_match_range t ~lo ~hi (test : test) =
  if hi <= lo then false
  else if lo >= t.rows then true
  else begin
    let hi_capped = min hi t.rows in
    let z0 = lo / t.zone and z1 = (hi_capped - 1) / t.zone in
    let rec go z = z <= z1 && (zone_may_match t z test || go (z + 1)) in
    go z0 || hi > t.rows
  end

let byte_size t =
  let b =
    match t.bounds with
    | Z_int (lo, hi) -> 8 * (Array.length lo + Array.length hi)
    | Z_float (lo, hi) -> 8 * (Array.length lo + Array.length hi)
  in
  b + Array.length t.empty
