open Proteus_model

type t =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Strings of string array
  (* dictionary-encoded strings: codes index into the (deduplicated,
     first-seen-order) dictionary — the promoted layout for hot string
     columns, enabling code-comparison and per-entry LIKE kernels *)
  | Dicts of int array * string array
  | Nullmask of bool array * t

let rec length = function
  | Ints a -> Array.length a
  | Floats a -> Array.length a
  | Bools a -> Array.length a
  | Strings a -> Array.length a
  | Dicts (codes, _) -> Array.length codes
  | Nullmask (_, c) -> length c

let rec get c i : Value.t =
  match c with
  | Ints a -> Int a.(i)
  | Floats a -> Float a.(i)
  | Bools a -> Bool a.(i)
  | Strings a -> String a.(i)
  | Dicts (codes, dict) -> String dict.(codes.(i))
  | Nullmask (mask, inner) -> if mask.(i) then Null else get inner i

(* First-seen-order dictionary encoding: the decoded column is
   string-for-string identical to the input. *)
let dict_encode (a : string array) : int array * string array =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let dict = ref [] and ndict = ref 0 in
  let codes =
    Array.map
      (fun s ->
        match Hashtbl.find_opt tbl s with
        | Some c -> c
        | None ->
          let c = !ndict in
          Hashtbl.add tbl s c;
          dict := s :: !dict;
          incr ndict;
          c)
      a
  in
  (codes, Array.of_list (List.rev !dict))

(* Promote a string column to its dictionary layout (identity on anything
   already promoted; None for non-string columns). *)
let promote_strings (c : t) : t option =
  match c with
  | Strings a ->
    let codes, dict = dict_encode a in
    Some (Dicts (codes, dict))
  | Nullmask (mask, Strings a) ->
    let codes, dict = dict_encode a in
    Some (Nullmask (mask, Dicts (codes, dict)))
  | Dicts _ | Nullmask (_, Dicts _) -> Some c
  | Ints _ | Floats _ | Bools _ | Nullmask _ -> None

module Builder = struct
  type column = t

  type payload =
    | Bints of { mutable a : int array; mutable n : int }
    | Bfloats of { mutable a : float array; mutable n : int }
    | Bbools of { mutable a : bool array; mutable n : int }
    | Bstrings of { mutable a : string array; mutable n : int }

  type t = {
    payload : payload;
    mutable nulls : bool array;       (* grown lazily alongside payload *)
    mutable has_null : bool;
  }

  let initial = 64

  let create (ty : Ptype.t) =
    let payload =
      match Ptype.unwrap_option ty with
      | Ptype.Int | Ptype.Date -> Bints { a = Array.make initial 0; n = 0 }
      | Ptype.Float -> Bfloats { a = Array.make initial 0.; n = 0 }
      | Ptype.Bool -> Bbools { a = Array.make initial false; n = 0 }
      | Ptype.String -> Bstrings { a = Array.make initial ""; n = 0 }
      | t -> Perror.type_error "Column.Builder.create: non-primitive type %a" Ptype.pp t
    in
    { payload; nulls = Array.make initial false; has_null = false }

  let payload_len = function
    | Bints { n; _ } | Bfloats { n; _ } | Bbools { n; _ } | Bstrings { n; _ } -> n

  let length t = payload_len t.payload

  let grow_nulls t n =
    if n > Array.length t.nulls then begin
      let bigger = Array.make (max (n * 2) initial) false in
      Array.blit t.nulls 0 bigger 0 (Array.length t.nulls);
      t.nulls <- bigger
    end

  let add_int t v =
    match t.payload with
    | Bints b ->
      if b.n >= Array.length b.a then begin
        let bigger = Array.make (max (b.n * 2) initial) 0 in
        Array.blit b.a 0 bigger 0 b.n;
        b.a <- bigger
      end;
      b.a.(b.n) <- v;
      b.n <- b.n + 1;
      grow_nulls t b.n
    | Bfloats _ | Bbools _ | Bstrings _ -> Perror.type_error "Builder.add_int on non-int column"

  let add_float t v =
    match t.payload with
    | Bfloats b ->
      if b.n >= Array.length b.a then begin
        let bigger = Array.make (max (b.n * 2) initial) 0. in
        Array.blit b.a 0 bigger 0 b.n;
        b.a <- bigger
      end;
      b.a.(b.n) <- v;
      b.n <- b.n + 1;
      grow_nulls t b.n
    | Bints _ | Bbools _ | Bstrings _ -> Perror.type_error "Builder.add_float on non-float column"

  let add_bool t v =
    match t.payload with
    | Bbools b ->
      if b.n >= Array.length b.a then begin
        let bigger = Array.make (max (b.n * 2) initial) false in
        Array.blit b.a 0 bigger 0 b.n;
        b.a <- bigger
      end;
      b.a.(b.n) <- v;
      b.n <- b.n + 1;
      grow_nulls t b.n
    | Bints _ | Bfloats _ | Bstrings _ -> Perror.type_error "Builder.add_bool on non-bool column"

  let add_string t v =
    match t.payload with
    | Bstrings b ->
      if b.n >= Array.length b.a then begin
        let bigger = Array.make (max (b.n * 2) initial) "" in
        Array.blit b.a 0 bigger 0 b.n;
        b.a <- bigger
      end;
      b.a.(b.n) <- v;
      b.n <- b.n + 1;
      grow_nulls t b.n
    | Bints _ | Bfloats _ | Bbools _ -> Perror.type_error "Builder.add_string on non-string column"

  let add_null t =
    (* A null occupies a payload slot (with a dummy value) plus a mask bit. *)
    (match t.payload with
    | Bints _ -> add_int t 0
    | Bfloats _ -> add_float t 0.
    | Bbools _ -> add_bool t false
    | Bstrings _ -> add_string t "");
    t.nulls.(length t - 1) <- true;
    t.has_null <- true

  let add_value t (v : Value.t) =
    match v with
    | Null -> add_null t
    | Int i | Date i -> add_int t i
    | Float f -> add_float t f
    | Bool b -> add_bool t b
    | String s -> add_string t s
    | Record _ | Coll _ ->
      Perror.type_error "Column.Builder.add_value: non-primitive %a" Value.pp v

  let finish t =
    let n = length t in
    let col =
      match t.payload with
      | Bints b -> Ints (Array.sub b.a 0 n)
      | Bfloats b -> Floats (Array.sub b.a 0 n)
      | Bbools b -> Bools (Array.sub b.a 0 n)
      | Bstrings b -> Strings (Array.sub b.a 0 n)
    in
    if t.has_null then Nullmask (Array.sub t.nulls 0 n, col) else col

  let concat (ty : Ptype.t) (segs : t list) =
    (* Segment assembly for parallel materialization: one exact-size
       allocation, one [Array.blit] per segment, in list order — the result
       equals replaying every add on a single builder ([finish] of the
       row-order concatenation). *)
    let n = List.fold_left (fun acc s -> acc + length s) 0 segs in
    let blit_ints () =
      let out = Array.make n 0 in
      let at = ref 0 in
      List.iter
        (fun s ->
          match s.payload with
          | Bints b ->
            Array.blit b.a 0 out !at b.n;
            at := !at + b.n
          | Bfloats _ | Bbools _ | Bstrings _ ->
            Perror.type_error "Column.Builder.concat: segment type mismatch")
        segs;
      Ints out
    in
    let blit_floats () =
      let out = Array.make n 0. in
      let at = ref 0 in
      List.iter
        (fun s ->
          match s.payload with
          | Bfloats b ->
            Array.blit b.a 0 out !at b.n;
            at := !at + b.n
          | Bints _ | Bbools _ | Bstrings _ ->
            Perror.type_error "Column.Builder.concat: segment type mismatch")
        segs;
      Floats out
    in
    let blit_bools () =
      let out = Array.make n false in
      let at = ref 0 in
      List.iter
        (fun s ->
          match s.payload with
          | Bbools b ->
            Array.blit b.a 0 out !at b.n;
            at := !at + b.n
          | Bints _ | Bfloats _ | Bstrings _ ->
            Perror.type_error "Column.Builder.concat: segment type mismatch")
        segs;
      Bools out
    in
    let blit_strings () =
      let out = Array.make n "" in
      let at = ref 0 in
      List.iter
        (fun s ->
          match s.payload with
          | Bstrings b ->
            Array.blit b.a 0 out !at b.n;
            at := !at + b.n
          | Bints _ | Bfloats _ | Bbools _ ->
            Perror.type_error "Column.Builder.concat: segment type mismatch")
        segs;
      Strings out
    in
    let col =
      match Ptype.unwrap_option ty with
      | Ptype.Int | Ptype.Date -> blit_ints ()
      | Ptype.Float -> blit_floats ()
      | Ptype.Bool -> blit_bools ()
      | Ptype.String -> blit_strings ()
      | t -> Perror.type_error "Column.Builder.concat: non-primitive type %a" Ptype.pp t
    in
    if List.exists (fun s -> s.has_null) segs then begin
      let mask = Array.make n false in
      let at = ref 0 in
      List.iter
        (fun s ->
          let ln = length s in
          Array.blit s.nulls 0 mask !at ln;
          at := !at + ln)
        segs;
      Nullmask (mask, col)
    end
    else col
end

let of_values ty vs =
  let b = Builder.create ty in
  List.iter (Builder.add_value b) vs;
  Builder.finish b

let rec byte_size = function
  | Ints a -> 8 * Array.length a
  | Floats a -> 8 * Array.length a
  | Bools a -> Array.length a
  | Strings a -> Array.fold_left (fun acc s -> acc + 16 + String.length s) 0 a
  | Dicts (codes, dict) ->
    (8 * Array.length codes)
    + Array.fold_left (fun acc s -> acc + 16 + String.length s) 0 dict
  | Nullmask (mask, c) -> Array.length mask + byte_size c

let min_max c =
  let n = length c in
  let best = ref None in
  for i = 0 to n - 1 do
    match get c i with
    | Value.Null -> ()
    | v -> (
      match !best with
      | None -> best := Some (v, v)
      | Some (lo, hi) ->
        let lo = if Value.compare v lo < 0 then v else lo in
        let hi = if Value.compare v hi > 0 then v else hi in
        best := Some (lo, hi))
  done;
  !best
