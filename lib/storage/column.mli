(** Typed column chunks — the binary column format, in memory.

    Used by (i) the binary-column input plug-in (the "MonetDB-like" files the
    paper's Proteus reads), (ii) the caching manager (caches are binary
    columns materialized from evaluated expressions, Section 6), and (iii)
    the column-store baseline engine. *)

open Proteus_model

type t =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Strings of string array
  | Dicts of int array * string array
      (** dictionary-encoded strings: element [i] is [dict.(codes.(i))]. The
          promoted layout for hot cached string columns — comparisons run on
          codes, LIKE runs once per dictionary entry. *)
  | Nullmask of bool array * t
      (** validity-tagged column: [mask.(i)] true means value [i] is NULL *)

val length : t -> int

(** [get c i] boxes element [i]. Dates are stored in [Ints] columns; callers
    that care about dates re-wrap via the schema. *)
val get : t -> int -> Value.t

(** [dict_encode a] is [(codes, dict)] with [dict] deduplicated in first-seen
    order and [dict.(codes.(i)) = a.(i)] for every [i]. *)
val dict_encode : string array -> int array * string array

(** [promote_strings c] rewrites a (possibly nullable) [Strings] column to its
    [Dicts] layout; identity on already-promoted columns, [None] otherwise. *)
val promote_strings : t -> t option

(** [of_values ty vs] packs boxed values into a typed column. Null values
    force a [Nullmask] wrapper. *)
val of_values : Ptype.t -> Value.t list -> t

(** Builders: dynamic typed arrays, for streaming materialization. *)
module Builder : sig
  type column = t
  type t

  val create : Ptype.t -> t

  (** Fast paths that avoid boxing. Using one on a column of a different type
      raises [Perror.Type_error]. *)
  val add_int : t -> int -> unit

  val add_float : t -> float -> unit
  val add_bool : t -> bool -> unit
  val add_string : t -> string -> unit

  val add_value : t -> Value.t -> unit
  val length : t -> int
  val finish : t -> column

  (** [concat ty segs] assembles per-segment builders (in list order) into one
      column with a single exact-size allocation and one [Array.blit] per
      segment — bit-identical to [finish] of a builder fed every row in that
      order. The null mask is kept only when some segment holds a null, like
      [finish]. Segments must all have been created with [ty]. *)
  val concat : Ptype.t -> t list -> column
end

(** Approximate memory footprint in bytes (for cache budgeting). *)
val byte_size : t -> int

(** [min_max c] is [(min, max)] over non-null elements, [None] when empty.
    Used by the statistics collectors. *)
val min_max : t -> (Value.t * Value.t) option
