(* The Proteus command-line interface: register raw files, run one query,
   print the result.

     proteus_cli \
       --json 'sailors=people.json:id:int,children:[name:string,age:int]' \
       --csv  'orders=orders.csv:okey:int,total:float' \
       -q 'SELECT COUNT(1) FROM orders WHERE total < 10'

   Dataset arguments are NAME=PATH:TYPESPEC (see Proteus.Typespec). *)

open Cmdliner
open Proteus_model

let split_dataset_arg arg =
  match String.index_opt arg '=' with
  | None -> Error (`Msg "dataset argument must be NAME=PATH[:TYPESPEC]")
  | Some eq -> (
    let name = String.sub arg 0 eq in
    let rest = String.sub arg (eq + 1) (String.length arg - eq - 1) in
    match String.index_opt rest ':' with
    | None -> Ok (name, rest, None) (* no typespec: infer the schema *)
    | Some colon ->
      let path = String.sub rest 0 colon in
      let spec = String.sub rest (colon + 1) (String.length rest - colon - 1) in
      (match Proteus.Typespec.parse spec with
      | element -> Ok (name, path, Some element)
      | exception Perror.Parse_error { msg; _ } -> Error (`Msg ("bad typespec: " ^ msg))))

let dataset_conv =
  Arg.conv
    ( (fun s -> split_dataset_arg s),
      fun ppf (name, path, element) ->
        match element with
        | Some e -> Fmt.pf ppf "%s=%s:%s" name path (Proteus.Typespec.render e)
        | None -> Fmt.pf ppf "%s=%s" name path )

let json_args =
  Arg.(
    value
    & opt_all dataset_conv []
    & info [ "json" ] ~docv:"NAME=PATH[:SPEC]"
        ~doc:"Register a JSON dataset; without :SPEC the schema is inferred.")

let csv_args =
  Arg.(
    value
    & opt_all dataset_conv []
    & info [ "csv" ] ~docv:"NAME=PATH[:SPEC]"
        ~doc:"Register a CSV dataset; without :SPEC the schema is inferred \
              from a header row.")

let query =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:"The query: SQL, or a 'for {...} yield ...' comprehension.")

let params_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "p"; "param" ] ~docv:"[NAME=]VALUE"
        ~doc:"Bind a query parameter. $(b,--param 42) binds the next \
              positional $(b,?) (named 1, 2, ... in appearance order); \
              $(b,--param name=42) binds $(b,\\$name). Values parse as \
              null, true/false, int, float or a 'quoted string'; anything \
              else is taken as a raw string. Repeatable.")

let parse_params raw =
  let positional = ref 0 in
  List.map (Proteus_server.Server.parse_param ~positional) raw

let engine =
  Arg.(
    value
    & opt (enum [ ("compiled", Proteus.Db.Engine_compiled); ("volcano", Proteus.Db.Engine_volcano) ])
        Proteus.Db.Engine_compiled
    & info [ "engine" ] ~doc:"Executor: the per-query compiled engine or the \
                              Volcano interpreter (for comparison).")

let domains =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Run the compiled engine with morsel-driven parallel execution \
              over $(docv) OCaml domains; 1 (the default) is the serial \
              engine. Composes with the default --engine only.")

let batch_size =
  Arg.(
    value
    & opt int Proteus_engine.Compiled.default_batch_size
    & info [ "batch-size" ] ~docv:"N"
        ~doc:"Rows per batch of the compiled engine's vectorized lane; 0 \
              disables it (pure tuple-at-a-time execution). Results are \
              identical either way.")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:"Register each --csv/--json input as a shard set of $(docv) \
              contiguous pieces (split at record boundaries — one record per \
              line) instead of one dataset. Scans fan out over the shards \
              and prune pieces whose zone-map/Bloom digests cannot match a \
              pushed-down predicate (see shards-pruned under $(b,--stats)); \
              results are bit-identical to the unsharded registration.")

let on_error =
  Arg.(
    value
    & opt
        (enum
           [
             ("fail", Fault.Fail_fast);
             ("skip", Fault.Skip_row);
             ("null", Fault.Null_fill);
           ])
        Fault.Fail_fast
    & info [ "on-error" ] ~docv:"POLICY"
        ~doc:"What to do when a row of raw input fails to parse: $(b,fail) \
              aborts the query on the first error (the default), $(b,skip) \
              drops the offending rows, $(b,null) substitutes NULL for the \
              unreadable fields. Skipped/nulled rows are tallied in the \
              error report (see $(b,--stats)).")

let max_errors =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-errors" ] ~docv:"N"
        ~doc:"Abort the query once a degraded --on-error policy has absorbed \
              more than $(docv) recoverable errors. Unlimited by default.")

let timeout_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"N"
        ~doc:"Cancel the query after $(docv) milliseconds. The deadline is \
              checked cooperatively at morsel/batch boundaries, so parallel \
              workers stop within one morsel of it expiring. Exit code 3.")

let retry_budget =
  Arg.(
    value
    & opt int Proteus_resilience.Policy.(attempts default)
    & info [ "retry-budget" ] ~docv:"N"
        ~doc:"Attempts per shard member build: a recoverable failure is \
              retried up to $(docv)-1 times with exponential backoff and \
              decorrelated jitter (never sleeping past the query deadline), \
              rebuilding the member from scratch each time. A member that \
              exhausts its budget repeatedly trips its circuit breaker and \
              is skipped outright until a cooldown probe heals it.")

let hedge_ms =
  Arg.(
    value
    & opt int 0
    & info [ "hedge-ms" ] ~docv:"N"
        ~doc:"Straggler hedging floor: once a shard member's build has run \
              longer than max($(docv) ms, 3x the fleet's smoothed member \
              latency), dispatch one speculative duplicate and take the \
              first finisher (the loser is cancelled cooperatively). 0 (the \
              default) disables hedging. Results are bit-identical either \
              way; see shards-hedged under $(b,--stats).")

(* --retry-budget / --hedge-ms land on the db's plug-in registry, where
   the shard scatter runs them. *)
let configure_resilience db ~retry_budget ~hedge_ms =
  let reg = Proteus.Db.registry db in
  Proteus_plugin.Registry.set_retry_policy reg
    (Proteus_resilience.Policy.of_attempts retry_budget);
  if hedge_ms > 0 then
    Proteus_plugin.Registry.set_hedge reg
      (Some (Proteus_resilience.Hedge.create ~floor_ms:(float_of_int hedge_ms) ()))

(* PROTEUS_FAULT_STALL="member=ms[:times][,member=ms[:times]...]" delays
   the first [times] (default 1) builds of the named members by [ms]
   milliseconds — the CI harness's slow-shard injection, wired through the
   registry interposer so it survives retry-path invalidations. *)
let install_env_stall db =
  match Sys.getenv_opt "PROTEUS_FAULT_STALL" with
  | None | Some "" -> ()
  | Some spec ->
    let parse_entry e =
      match String.index_opt e '=' with
      | None -> None
      | Some eq -> (
        let name = String.sub e 0 eq in
        let rest = String.sub e (eq + 1) (String.length e - eq - 1) in
        let ms, times =
          match String.index_opt rest ':' with
          | None -> (rest, "1")
          | Some c ->
            ( String.sub rest 0 c,
              String.sub rest (c + 1) (String.length rest - c - 1) )
        in
        match (float_of_string_opt ms, int_of_string_opt times) with
        | Some ms, Some times when ms >= 0. ->
          Some (name, (ms, Atomic.make times))
        | _ -> None)
    in
    let entries =
      List.filter_map parse_entry (String.split_on_char ',' spec)
    in
    if entries <> [] then
      Proteus_plugin.Registry.set_interposer (Proteus.Db.registry db)
        (Some
           (fun name genuine ->
             match List.assoc_opt name entries with
             | None -> genuine
             | Some (ms, budget) ->
               fun () ->
                 let rec claim () =
                   let n = Atomic.get budget in
                   if n <= 0 then false
                   else if Atomic.compare_and_set budget n (n - 1) then true
                   else claim ()
                 in
                 if claim () then Unix.sleepf (ms /. 1000.);
                 genuine ()))

let stats =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:"Print the engine's proxy performance counters after the query \
              (tuples, branch points, batches, selection density, lane per \
              pipeline) plus per-phase wall-clock attribution \
              (scan/build/probe/merge, summed across domains) and, under a \
              degraded --on-error policy, the per-query error report.")

let no_cache =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable adaptive caching.")

let promote =
  Arg.(
    value
    & flag
    & info [ "promote" ]
        ~doc:"Enable workload-adaptive cache promotion: columns that keep \
              being read or filtered get zone maps (numeric: scans skip \
              whole morsels that cannot match a pushed-down comparison) or \
              dictionary encodings (strings: equality and LIKE run on codes, \
              and the column becomes cacheable at all). Range-filtered \
              columns additionally get sorted projections (morsel skipping \
              that works on unclustered data), and promoted JSON paths \
              materialize pre-parsed slot columns straight from the \
              structural index. Results are identical with or without \
              promotion.")

let no_projection =
  Arg.(
    value
    & flag
    & info [ "no-projection" ]
        ~doc:"With $(b,--promote): keep zone maps and dictionary promotion \
              but never build sorted projections (isolates their \
              contribution; used by the benchmark harness).")

let promote_threshold =
  Arg.(
    value
    & opt int 3
    & info [ "promote-threshold" ] ~docv:"N"
        ~doc:"Accesses (cache reads + selective-predicate compilations) \
              before a column promotes; only meaningful with $(b,--promote).")

let repeat =
  Arg.(
    value
    & opt int 1
    & info [ "repeat" ] ~docv:"N"
        ~doc:"Run the query $(docv) times in one process (cold fill, then \
              warm cache, then — with $(b,--promote) — promoted layouts). \
              The result and $(b,--stats) counters reflect the final pass; \
              each pass's wall clock prints to stderr.")

let explain =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print the optimized plan, not results.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log index builds and cache activity.")

let format =
  Arg.(
    value
    & opt (enum [ ("values", `Values); ("json", `Json); ("csv", `Csv); ("table", `Table) ])
        `Values
    & info [ "format" ] ~doc:"Result rendering: values, json, csv or table.")

let is_comprehension q =
  let trimmed = String.trim q in
  String.length trimmed >= 3 && String.lowercase_ascii (String.sub trimmed 0 3) = "for"

(* --- error rendering ------------------------------------------------------

   Exit codes: 0 success; 1 plan/type error (the query is wrong); 2
   parse/data error (the data is wrong); 3 deadline exceeded; 4 I/O. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* --shards: split newline-delimited contents into n contiguous pieces
   (order preserved, sizes differing by at most one). *)
let split_lines_shards n text =
  let lines =
    match List.rev (String.split_on_char '\n' text) with
    | "" :: rest -> List.rev rest
    | all -> List.rev all
  in
  let len = List.length lines in
  let n = max 1 (min n (max 1 len)) in
  let base = len / n and extra = len mod n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: r -> take (k - 1) (x :: acc) r
  in
  let rec go i l =
    if i = n then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let part, rest = take sz [] l in
      (String.concat "\n" part ^ if part = [] then "" else "\n") :: go (i + 1) rest
  in
  go 0 lines

let register_inputs db ~shards ~verbose jsons csvs =
  let say name ty =
    if verbose then Fmt.epr "inferred %s: %s@." name (Proteus.Typespec.render ty)
  in
  List.iter
    (fun (name, path, element) ->
      if shards <= 1 then
        match element with
        | Some element -> Proteus.Db.register_json_file db ~name ~element ~path
        | None -> say name (Proteus.Db.register_json_inferred db ~name ~contents:(read_file path))
      else begin
        let contents = read_file path in
        let element =
          match element with
          | Some e -> e
          | None ->
            let ty = Proteus.Typeinfer.of_json contents in
            say name ty;
            ty
        in
        Proteus.Db.register_sharded_json db ~name ~element
          ~shards:(split_lines_shards shards contents)
      end)
    jsons;
  List.iter
    (fun (name, path, element) ->
      if shards <= 1 then
        match element with
        | Some element -> Proteus.Db.register_csv_file db ~name ~element ~path ()
        | None ->
          say name (Proteus.Db.register_csv_inferred db ~name ~contents:(read_file path) ())
      else begin
        let contents = read_file path in
        match element with
        | Some element ->
          (* an explicit typespec means a headerless file (matches the
             unsharded --csv NAME=PATH:SPEC path): plain row split *)
          Proteus.Db.register_sharded_csv db ~name ~element
            ~shards:(split_lines_shards shards contents) ()
        | None ->
          (* inferred CSV carries a header row: replicate it onto every
             shard so each member parses standalone *)
          let config =
            { Proteus_format.Csv.default_config with Proteus_format.Csv.has_header = true }
          in
          let element = Proteus.Typeinfer.of_csv ~config contents in
          say name element;
          let header, body =
            match String.index_opt contents '\n' with
            | Some i ->
              ( String.sub contents 0 (i + 1),
                String.sub contents (i + 1) (String.length contents - i - 1) )
            | None -> (contents, "")
          in
          Proteus.Db.register_sharded_csv db ~name ~config ~element
            ~shards:(List.map (fun s -> header ^ s) (split_lines_shards shards body))
            ()
      end)
    csvs

let line_col src pos =
  let pos = max 0 (min pos (String.length src)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

(* Map a Parse_error's [what] to the offending file: index-build errors are
   wrapped as "format:dataset"; access-time errors carry the bare format
   name, which still identifies the file when a unique registered dataset
   has that format. *)
let locate_file files what =
  match String.index_opt what ':' with
  | Some i ->
    let ds = String.sub what (i + 1) (String.length what - i - 1) in
    List.find_opt (fun (name, _, _) -> name = ds) files
  | None ->
    let fmt = if what = "csv" then "csv" else "json" in
    (match List.filter (fun (_, _, f) -> f = fmt) files with
    | [ one ] -> Some one
    | _ -> None)

let pp_error files ppf = function
  | Perror.Parse_error { what; pos; msg } as e -> (
    match locate_file files what with
    | Some (_, path, _) -> (
      match try Some (read_file path) with Sys_error _ -> None with
      | Some src ->
        let line, col = line_col src pos in
        Fmt.pf ppf "%s: byte %d (line %d, column %d): %s" path pos line col msg
      | None -> Fmt.pf ppf "%s: byte %d: %s" path pos msg)
    | None -> Perror.pp_exn ppf e)
  | Fault.Budget_exceeded n -> Fmt.pf ppf "error budget exceeded: %d data errors" n
  | e -> Perror.pp_exn ppf e

let classify = function
  | Perror.Plan_error _ | Perror.Type_error _ | Perror.Unsupported _ -> 1
  | Perror.Parse_error _ | Fault.Budget_exceeded _ -> 2
  | Fault.Timed_out -> 3
  | Sys_error _ -> 4
  | _ -> 2

let run jsons csvs q raw_params engine domains batch_size shards policy max_errors
    timeout_ms retry_budget hedge_ms stats no_cache promote promote_threshold
    no_projection repeat explain verbose format =
  let params = parse_params raw_params in
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let caching =
    {
      Proteus_cache.Manager.default_config with
      promote;
      promote_threshold;
      promote_projections = not no_projection;
    }
  in
  let db = Proteus.Db.create ~caching () in
  if no_cache then Proteus.Db.set_caching db false;
  begin
    register_inputs db ~shards ~verbose jsons csvs;
    configure_resilience db ~retry_budget ~hedge_ms;
    install_env_stall db;
    if explain then begin
      let plan =
        if is_comprehension q then Proteus.Db.plan_comprehension db q
        else Proteus.Db.plan_sql db q
      in
      print_string
        (Proteus_optimizer.Optimizer.explain (Proteus.Db.catalog db) plan);
      0
    end
    else begin
      if stats then Proteus_engine.Counters.reset ();
      let files =
        List.map (fun (n, p, _) -> (n, p, "json")) jsons
        @ List.map (fun (n, p, _) -> (n, p, "csv")) csvs
      in
      let pp_report ppf (r : Fault.report) =
        if r.Fault.rp_errors > 0 || r.Fault.rp_policy <> Fault.Fail_fast then
          Fmt.pf ppf "%a@." Fault.pp_report r
      in
      let run_pass () =
        if is_comprehension q then
          Proteus.Db.comprehension_guarded ~engine ~domains ~batch_size ~policy
            ?max_errors ?timeout_ms ~params db q
        else
          Proteus.Db.sql_guarded ~engine ~domains ~batch_size ~policy ?max_errors
            ?timeout_ms ~params db q
      in
      (* warm-up passes: cold fill first, then warm cache, then (with
         --promote) promoted layouts; the printed result and the --stats
         counters describe the final pass only *)
      let rec warm_up k =
        if k <= 1 then None
        else begin
          if stats then Proteus_engine.Counters.reset ();
          let t0 = Unix.gettimeofday () in
          match run_pass () with
          | Proteus.Db.Completed _ ->
            Fmt.epr "(pass %d: %d ms)@." (repeat - k + 1)
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1000.));
            warm_up (k - 1)
          | failed -> Some failed
        end
      in
      let early = warm_up repeat in
      if stats then Proteus_engine.Counters.reset ();
      let t0 = Unix.gettimeofday () in
      let outcome = match early with Some f -> f | None -> run_pass () in
      let elapsed = Unix.gettimeofday () -. t0 in
      match outcome with
      | Proteus.Db.Completed (result, report) ->
        (match format with
        | `Json -> print_string (Proteus.Output.to_json result)
        | `Csv -> print_string (Proteus.Output.to_csv result)
        | `Table -> print_string (Proteus.Output.to_table result)
        | `Values -> (
          match result with
          | Value.Coll (_, rows) -> List.iter (fun r -> Fmt.pr "%a@." Value.pp r) rows
          | v -> Fmt.pr "%a@." Value.pp v));
        Fmt.epr "(%d ms)@." (int_of_float (elapsed *. 1000.));
        if stats then begin
          Fmt.epr "%a@." Proteus_engine.Counters.pp
            (Proteus_engine.Counters.snapshot ());
          let cs = Proteus.Db.cache_stats db in
          if cs.Proteus_cache.Manager.fill_commits > 0 || cs.quarantined > 0 then
            Fmt.epr
              "cache fills: commits=%d segments=%d rows=%d quarantined=%d@."
              cs.Proteus_cache.Manager.fill_commits cs.fill_segments cs.fill_rows
              cs.quarantined;
          if cs.Proteus_cache.Manager.promotions > 0 then
            Fmt.epr
              "cache promotion: promotions=%d zone-maps=%d dict-columns=%d \
               sorted-projections=%d slot-columns=%d@."
              cs.Proteus_cache.Manager.promotions cs.zone_maps cs.dict_columns
              cs.sorted_projections cs.slot_columns;
          Fmt.epr "%a" pp_report report
        end;
        0
      | Proteus.Db.Failed (report, e) ->
        Fmt.epr "proteus_cli: %a@." (pp_error files) e;
        if stats then Fmt.epr "%a" pp_report report;
        classify e
      | Proteus.Db.Timed_out report ->
        Fmt.epr "proteus_cli: query exceeded its deadline@.";
        if stats then Fmt.epr "%a" pp_report report;
        3
      | Proteus.Db.Cancelled report ->
        Fmt.epr "proteus_cli: query cancelled@.";
        if stats then Fmt.epr "%a" pp_report report;
        2
    end
  end

let run jsons csvs q params engine domains batch_size shards policy max_errors
    timeout_ms retry_budget hedge_ms stats no_cache promote promote_threshold
    no_projection repeat explain verbose format =
  let files =
    List.map (fun (n, p, _) -> (n, p, "json")) jsons
    @ List.map (fun (n, p, _) -> (n, p, "csv")) csvs
  in
  try
    run jsons csvs q params engine domains batch_size shards policy max_errors
      timeout_ms retry_budget hedge_ms stats no_cache promote promote_threshold
      no_projection repeat explain verbose format
  with
  | (Perror.Parse_error _ | Perror.Plan_error _ | Perror.Type_error _
    | Perror.Unsupported _ | Sys_error _) as e ->
    Fmt.epr "proteus_cli: %a@." (pp_error files) e;
    classify e

(* --- serve ---------------------------------------------------------------- *)

let port_arg =
  Arg.(
    value
    & opt int Proteus_server.Server.default_config.Proteus_server.Server.port
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on; 0 binds an \
                                         ephemeral port (printed at startup).")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let workers_arg =
  Arg.(
    value
    & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:"Scheduler worker domains: at most $(docv) queries execute \
              concurrently; the rest wait in the admission queue.")

let queue_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission-control bound: submissions beyond $(docv) waiting \
              queries are rejected with 'err overloaded' instead of \
              queueing unbounded latency.")

let cache_arg =
  Arg.(
    value
    & opt int 64
    & info [ "engine-cache" ] ~docv:"N"
        ~doc:"Plan-shape engine cache capacity: compiled engines kept for \
              re-binding, LRU-evicted beyond $(docv).")

let drain_arg =
  Arg.(
    value
    & opt int
        Proteus_server.Server.default_config.Proteus_server.Server
        .drain_timeout_ms
    & info [ "drain-timeout-ms" ] ~docv:"N"
        ~doc:"Graceful-shutdown budget: on SIGTERM the server stops \
              accepting, lets queued and in-flight queries finish for up \
              to $(docv) milliseconds, then cancels the stragglers \
              cooperatively and exits.")

let serve jsons csvs host port workers queue cache domains batch_size shards
    timeout_ms retry_budget hedge_ms drain_timeout_ms no_cache promote
    promote_threshold verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Info)
  end
  else begin
    (* the listening-port banner is load-bearing for scripted clients *)
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.App)
  end;
  let caching =
    { Proteus_cache.Manager.default_config with promote; promote_threshold }
  in
  let db = Proteus.Db.create ~caching () in
  if no_cache then Proteus.Db.set_caching db false;
  try
    register_inputs db ~shards ~verbose:false jsons csvs;
    configure_resilience db ~retry_budget ~hedge_ms;
    install_env_stall db;
    let cfg =
      {
        Proteus_server.Server.host;
        port;
        workers;
        max_queue = queue;
        cache_capacity = cache;
        domains;
        batch_size = (if batch_size = Proteus_engine.Compiled.default_batch_size then None else Some batch_size);
        timeout_ms;
        drain_timeout_ms;
      }
    in
    (* SIGTERM initiates the graceful drain: the accept loop notices the
       flag at its next select tick (EINTR wakes it immediately) *)
    let stop = Atomic.make false in
    (try
       Sys.set_signal Sys.sigterm
         (Sys.Signal_handle (fun _ -> Atomic.set stop true))
     with Invalid_argument _ -> ());
    Proteus_server.Server.serve ~stop db cfg;
    0
  with
  | (Perror.Parse_error _ | Perror.Plan_error _ | Perror.Type_error _
    | Perror.Unsupported _ | Sys_error _) as e ->
    Fmt.epr "proteus_cli: %a@." Perror.pp_exn e;
    classify e
  | Unix.Unix_error (err, fn, _) ->
    Fmt.epr "proteus_cli: %s: %s@." fn (Unix.error_message err);
    4

let exits =
  Cmd.Exit.info 1 ~doc:"on a plan or type error (the query is wrong)."
  :: Cmd.Exit.info 2 ~doc:"on a parse or data error (the data is wrong)."
  :: Cmd.Exit.info 3 ~doc:"when --timeout-ms expires."
  :: Cmd.Exit.info 4 ~doc:"on an I/O error."
  :: Cmd.Exit.defaults

let query_term =
  Term.(
    const run $ json_args $ csv_args $ query $ params_arg $ engine $ domains
    $ batch_size $ shards_arg $ on_error $ max_errors $ timeout_ms
    $ retry_budget $ hedge_ms $ stats $ no_cache $ promote $ promote_threshold
    $ no_projection $ repeat $ explain $ verbose $ format)

let serve_cmd =
  let doc = "serve concurrent queries over TCP (prepare-once/run-many)" in
  Cmd.v
    (Cmd.info "serve" ~doc ~exits
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Registers the given datasets once, then accepts line-protocol \
              clients: $(b,run SQL) executes a query, $(b,param [NAME=]VALUE) \
              binds parameters for the next run, $(b,timeout MS) sets its \
              deadline, $(b,stats) prints engine-cache, scheduler and \
              resilience counters, $(b,health) reports drain state, queue \
              depth and circuit-breaker states, $(b,ping)/$(b,quit) do what \
              they say. Compiled engines are cached by plan shape: queries \
              differing only in comparison constants re-bind parameter slots \
              instead of re-compiling. SIGTERM drains gracefully (see \
              $(b,--drain-timeout-ms)).";
         ])
    Term.(
      const serve $ json_args $ csv_args $ host_arg $ port_arg $ workers_arg
      $ queue_arg $ cache_arg $ domains $ batch_size $ shards_arg $ timeout_ms
      $ retry_budget $ hedge_ms $ drain_arg $ no_cache $ promote
      $ promote_threshold $ verbose)

let cmd =
  let doc = "query heterogeneous raw data files with one engine" in
  let info = Cmd.info "proteus_cli" ~doc ~exits in
  Cmd.group ~default:query_term info [ serve_cmd ]

let () = exit (Cmd.eval' cmd)
