(* The Proteus command-line interface: register raw files, run one query,
   print the result.

     proteus_cli \
       --json 'sailors=people.json:id:int,children:[name:string,age:int]' \
       --csv  'orders=orders.csv:okey:int,total:float' \
       -q 'SELECT COUNT(1) FROM orders WHERE total < 10'

   Dataset arguments are NAME=PATH:TYPESPEC (see Proteus.Typespec). *)

open Cmdliner
open Proteus_model

let split_dataset_arg arg =
  match String.index_opt arg '=' with
  | None -> Error (`Msg "dataset argument must be NAME=PATH[:TYPESPEC]")
  | Some eq -> (
    let name = String.sub arg 0 eq in
    let rest = String.sub arg (eq + 1) (String.length arg - eq - 1) in
    match String.index_opt rest ':' with
    | None -> Ok (name, rest, None) (* no typespec: infer the schema *)
    | Some colon ->
      let path = String.sub rest 0 colon in
      let spec = String.sub rest (colon + 1) (String.length rest - colon - 1) in
      (match Proteus.Typespec.parse spec with
      | element -> Ok (name, path, Some element)
      | exception Perror.Parse_error { msg; _ } -> Error (`Msg ("bad typespec: " ^ msg))))

let dataset_conv =
  Arg.conv
    ( (fun s -> split_dataset_arg s),
      fun ppf (name, path, element) ->
        match element with
        | Some e -> Fmt.pf ppf "%s=%s:%s" name path (Proteus.Typespec.render e)
        | None -> Fmt.pf ppf "%s=%s" name path )

let json_args =
  Arg.(
    value
    & opt_all dataset_conv []
    & info [ "json" ] ~docv:"NAME=PATH[:SPEC]"
        ~doc:"Register a JSON dataset; without :SPEC the schema is inferred.")

let csv_args =
  Arg.(
    value
    & opt_all dataset_conv []
    & info [ "csv" ] ~docv:"NAME=PATH[:SPEC]"
        ~doc:"Register a CSV dataset; without :SPEC the schema is inferred \
              from a header row.")

let query =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:"The query: SQL, or a 'for {...} yield ...' comprehension.")

let engine =
  Arg.(
    value
    & opt (enum [ ("compiled", Proteus.Db.Engine_compiled); ("volcano", Proteus.Db.Engine_volcano) ])
        Proteus.Db.Engine_compiled
    & info [ "engine" ] ~doc:"Executor: the per-query compiled engine or the \
                              Volcano interpreter (for comparison).")

let domains =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Run the compiled engine with morsel-driven parallel execution \
              over $(docv) OCaml domains; 1 (the default) is the serial \
              engine. Composes with the default --engine only.")

let batch_size =
  Arg.(
    value
    & opt int Proteus_engine.Compiled.default_batch_size
    & info [ "batch-size" ] ~docv:"N"
        ~doc:"Rows per batch of the compiled engine's vectorized lane; 0 \
              disables it (pure tuple-at-a-time execution). Results are \
              identical either way.")

let stats =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:"Print the engine's proxy performance counters after the query \
              (tuples, branch points, batches, selection density, lane per \
              pipeline) plus per-phase wall-clock attribution \
              (scan/build/probe/merge, summed across domains).")

let no_cache =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable adaptive caching.")

let explain =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print the optimized plan, not results.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log index builds and cache activity.")

let format =
  Arg.(
    value
    & opt (enum [ ("values", `Values); ("json", `Json); ("csv", `Csv); ("table", `Table) ])
        `Values
    & info [ "format" ] ~doc:"Result rendering: values, json, csv or table.")

let is_comprehension q =
  let trimmed = String.trim q in
  String.length trimmed >= 3 && String.lowercase_ascii (String.sub trimmed 0 3) = "for"

let run jsons csvs q engine domains batch_size stats no_cache explain verbose format =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let db = Proteus.Db.create () in
  if no_cache then Proteus.Db.set_caching db false;
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  List.iter
    (fun (name, path, element) ->
      match element with
      | Some element -> Proteus.Db.register_json_file db ~name ~element ~path
      | None ->
        let ty = Proteus.Db.register_json_inferred db ~name ~contents:(read_file path) in
        if verbose then Fmt.epr "inferred %s: %s@." name (Proteus.Typespec.render ty))
    jsons;
  begin
    List.iter
      (fun (name, path, element) ->
        match element with
        | Some element -> Proteus.Db.register_csv_file db ~name ~element ~path ()
        | None ->
          let ty =
            Proteus.Db.register_csv_inferred db ~name ~contents:(read_file path) ()
          in
          if verbose then Fmt.epr "inferred %s: %s@." name (Proteus.Typespec.render ty))
      csvs;
    if explain then begin
      let plan =
        if is_comprehension q then Proteus.Db.plan_comprehension db q
        else Proteus.Db.plan_sql db q
      in
      print_string
        (Proteus_optimizer.Optimizer.explain (Proteus.Db.catalog db) plan);
      Ok ()
    end
    else begin
      if stats then Proteus_engine.Counters.reset ();
      let t0 = Unix.gettimeofday () in
      let result =
        if is_comprehension q then
          Proteus.Db.comprehension ~engine ~domains ~batch_size db q
        else Proteus.Db.sql ~engine ~domains ~batch_size db q
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match format with
      | `Json -> print_string (Proteus.Output.to_json result)
      | `Csv -> print_string (Proteus.Output.to_csv result)
      | `Table -> print_string (Proteus.Output.to_table result)
      | `Values -> (
        match result with
        | Value.Coll (_, rows) -> List.iter (fun r -> Fmt.pr "%a@." Value.pp r) rows
        | v -> Fmt.pr "%a@." Value.pp v));
      Fmt.epr "(%d ms)@." (int_of_float (elapsed *. 1000.));
      if stats then
        Fmt.epr "%a@." Proteus_engine.Counters.pp (Proteus_engine.Counters.snapshot ());
      Ok ()
    end
  end

let run jsons csvs q engine domains batch_size stats no_cache explain verbose format =
  try run jsons csvs q engine domains batch_size stats no_cache explain verbose format with
  | (Perror.Parse_error _ | Perror.Plan_error _ | Perror.Type_error _
    | Perror.Unsupported _ | Sys_error _) as e ->
    Error (`Msg (Fmt.str "%a" Perror.pp_exn e))

let cmd =
  let doc = "query heterogeneous raw data files with one engine" in
  Cmd.v
    (Cmd.info "proteus_cli" ~doc)
    Term.(
      term_result
        (const run $ json_args $ csv_args $ query $ engine $ domains $ batch_size
       $ stats $ no_cache $ explain $ verbose $ format))

let () = exit (Cmd.eval cmd)
